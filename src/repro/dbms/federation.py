"""A small real federation of SQLite nodes with a client coordinator.

This is the reproduction of the paper's Section 5.2 deployment: five
heterogeneous machines running a commercial RDBMS, a dataset of 20 tables
(2–4 copies each) plus 80 select-project views, and a client that
allocates 300 star-query instances with either Greedy or QA-NT.

Substitutions (documented in DESIGN.md): SQLite in-memory databases in
worker threads replace the Windows PCs; per-node slowdown factors emulate
the hardware spread; table sizes and inter-arrival times are scaled down
~10x so the experiment runs in seconds on one machine.  The measured
quantities are the paper's: *time to assign* a query to a node (both
mechanisms wait for estimate replies from every node — the dominant cost
the paper observed) and *total evaluation time* (assign + queue + execute).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..catalog import Relation
from ..core import CapacitySupplySet, QantParameters, QantPricingAgent
from ..query import QueryClass
from .node import ExecutionResult, SqliteServerNode

__all__ = [
    "DbmsQueryOutcome",
    "DbmsRunResult",
    "DbmsFederation",
]


@dataclass(frozen=True)
class DbmsQueryOutcome:
    """Life cycle of one query through the real federation (seconds)."""

    qid: int
    class_index: int
    node_id: int
    arrival_s: float
    assigned_s: float
    finished_s: float
    resubmissions: int = 0

    @property
    def assign_ms(self) -> float:
        """Time to pick a node (the paper's Fig. 7 'assign' bar)."""
        return (self.assigned_s - self.arrival_s) * 1000.0

    @property
    def total_ms(self) -> float:
        """Assign + queue + execution (the Fig. 7 'total' bar)."""
        return (self.finished_s - self.arrival_s) * 1000.0


@dataclass
class DbmsRunResult:
    """All outcomes of one mechanism run plus summary statistics."""

    mechanism: str
    outcomes: List[DbmsQueryOutcome] = field(default_factory=list)
    unserved: int = 0

    @property
    def mean_assign_ms(self) -> float:
        """Average time to assign a query to a node."""
        if not self.outcomes:
            return float("nan")
        return sum(o.assign_ms for o in self.outcomes) / len(self.outcomes)

    @property
    def mean_total_ms(self) -> float:
        """Average total evaluation time."""
        if not self.outcomes:
            return float("nan")
        return sum(o.total_ms for o in self.outcomes) / len(self.outcomes)


class DbmsFederation:
    """Five (by default) SQLite server nodes plus the client coordinator."""

    def __init__(
        self,
        nodes: Sequence[SqliteServerNode],
        classes: Sequence[QueryClass],
        probe_latency_ms: float = 2.0,
    ):
        """``probe_latency_ms`` is the base one-way cost of asking one node
        for an estimate; it is scaled by the node's slowdown, modelling
        the paper's observation that the slowest PC took seconds to answer
        EXPLAIN PLAN."""
        if not nodes:
            raise ValueError("the federation needs at least one node")
        self._nodes = {node.node_id: node for node in nodes}
        self._classes = list(classes)
        self._probe_latency_ms = probe_latency_ms
        self._candidates: Dict[int, Tuple[int, ...]] = {}
        for qc in self._classes:
            holders = tuple(
                sorted(
                    nid
                    for nid, node in self._nodes.items()
                    if node.holds(qc.relation_ids)
                )
            )
            self._candidates[qc.index] = holders
        #: Outstanding estimated work per node (coordinator-side view).
        self._backlog_ms: Dict[int, float] = {nid: 0.0 for nid in self._nodes}
        self._backlog_lock = threading.Lock()

    # -- construction --------------------------------------------------------------

    @classmethod
    def build(
        cls,
        num_nodes: int = 5,
        num_tables: int = 20,
        num_views: int = 80,
        num_classes: int = 16,
        copies: Tuple[int, int] = (2, 4),
        table_size_mb: Tuple[float, float] = (0.5, 2.0),
        rows_per_mb: float = 2000.0,
        max_slowdown: float = 3.0,
        probe_latency_ms: float = 2.0,
        seed: int = 0,
    ) -> Tuple["DbmsFederation", List[QueryClass]]:
        """Create nodes, load the mirrored dataset, derive query classes.

        Defaults mirror the paper's setup scaled down: 5 nodes with a 1–3x
        speed spread (the paper's 1.3–3.06 GHz PCs), 20 tables with 2–4
        copies, 80 views, and star-join query classes over co-located
        tables.
        """
        rng = random.Random(seed)
        slowdowns = [1.0] + [
            rng.uniform(1.0, max_slowdown) for __ in range(num_nodes - 1)
        ]
        nodes = [
            SqliteServerNode(node_id=i, slowdown=slowdowns[i], rows_per_mb=rows_per_mb)
            for i in range(num_nodes)
        ]

        relations = [
            Relation(
                rid=rid,
                name="rel_%04d" % rid,
                size_mb=rng.uniform(*table_size_mb),
                num_attributes=10,
            )
            for rid in range(num_tables)
        ]
        holders_of: Dict[int, List[int]] = {}
        for relation in relations:
            count = rng.randint(*copies)
            chosen = rng.sample(range(num_nodes), min(count, num_nodes))
            holders_of[relation.rid] = chosen
            for node_id in chosen:
                nodes[node_id].load_relation(relation)

        for view_index in range(num_views):
            rid = rng.randrange(num_tables)
            max_val = rng.randrange(100, 900)
            for node_id in holders_of[rid]:
                nodes[node_id].create_view(
                    "view_%03d" % view_index, rid, max_val
                )

        classes: List[QueryClass] = []
        attempts = 0
        while len(classes) < num_classes and attempts < num_classes * 50:
            attempts += 1
            home = rng.randrange(num_nodes)
            local = nodes[home].relation_ids
            if len(local) < 2:
                continue
            width = rng.randint(2, min(4, len(local)))
            rids = tuple(sorted(rng.sample(local, width)))
            if any(set(c.relation_ids) == set(rids) for c in classes):
                continue
            classes.append(
                QueryClass(
                    index=len(classes),
                    relation_ids=rids,
                    selectivity=rng.uniform(0.1, 0.6),
                    requires_sort=True,
                )
            )
        federation = cls(nodes, classes, probe_latency_ms=probe_latency_ms)
        return federation, classes

    # -- accessors ------------------------------------------------------------------

    @property
    def nodes(self) -> Dict[int, SqliteServerNode]:
        """The server nodes by id."""
        return self._nodes

    @property
    def classes(self) -> List[QueryClass]:
        """The workload's query classes."""
        return self._classes

    def candidates(self, class_index: int) -> Tuple[int, ...]:
        """Node ids able to evaluate ``class_index`` locally."""
        return self._candidates.get(class_index, ())

    def warm_up(self) -> None:
        """Seed every node's history estimator with one run per class.

        The paper's implementation "used past execution information
        concerning queries with the same plan"; warm-up provides that
        history so the first measured queries are not estimated blind.
        """
        done = threading.Event()
        outstanding = [0]
        lock = threading.Lock()

        def on_complete(node_id: int, result: ExecutionResult) -> None:
            with lock:
                outstanding[0] -= 1
                if outstanding[0] == 0:
                    done.set()

        for qc in self._classes:
            for node_id in self.candidates(qc.index):
                with lock:
                    outstanding[0] += 1
                self._nodes[node_id].submit(-1, qc, 0, on_complete)
        if outstanding[0]:
            done.wait(timeout=120.0)

    # -- the two mechanisms ------------------------------------------------------------

    #: Per-node price level above which a node enforces its supply vector
    #: (the Section 5.1 threshold rule; matches
    #: :class:`repro.allocation.QantAllocator`).
    ACTIVATION_THRESHOLD = 2.0
    #: Backlog allowance: period plus this many times the node's largest
    #: class cost (matches the simulator allocator's default).
    ALLOWANCE_FACTOR = 2.0

    def run_workload(
        self,
        mechanism: str,
        num_queries: int = 300,
        mean_interarrival_ms: float = 30.0,
        period_ms: float = 250.0,
        qant_parameters: Optional[QantParameters] = None,
        seed: int = 0,
    ) -> DbmsRunResult:
        """Run a uniform-inter-arrival workload under one mechanism.

        ``mechanism`` is ``"greedy"`` or ``"qa-nt"``.  Inter-arrival times
        are uniform in ``[0, 2 * mean]`` (the paper's distribution), paced
        in real time.
        """
        if mechanism not in ("greedy", "qa-nt"):
            raise ValueError("unknown mechanism %r" % mechanism)
        rng = random.Random(seed)
        result = DbmsRunResult(mechanism=mechanism)
        result_lock = threading.Lock()
        completions = threading.Event()
        remaining = [num_queries]

        with self._backlog_lock:
            for nid in self._backlog_ms:
                self._backlog_ms[nid] = 0.0

        agents: Dict[int, QantPricingAgent] = {}
        agents_lock = threading.Lock()
        stop_periods = threading.Event()
        pending: List[Tuple[int, QueryClass, float, int]] = []
        pending_lock = threading.Lock()

        if mechanism == "qa-nt":
            params = qant_parameters or QantParameters()
            for nid in self._nodes:
                agents[nid] = QantPricingAgent(
                    self._node_supply_set(nid, period_ms),
                    parameters=params,
                )
                agents[nid].begin_period()
            period_thread = threading.Thread(
                target=self._period_loop,
                args=(agents, agents_lock, period_ms, stop_periods),
                daemon=True,
            )
            period_thread.start()

        def on_complete(node_id: int, execution: ExecutionResult) -> None:
            with self._backlog_lock:
                self._backlog_ms[node_id] = max(
                    0.0,
                    self._backlog_ms[node_id]
                    - execution.execution_s * 1000.0,
                )
            with result_lock:
                meta = inflight.pop(execution.qid)
                result.outcomes.append(
                    DbmsQueryOutcome(
                        qid=execution.qid,
                        class_index=execution.class_index,
                        node_id=node_id,
                        arrival_s=meta[0],
                        assigned_s=meta[1],
                        finished_s=execution.finished_s,
                        resubmissions=meta[2],
                    )
                )
                remaining[0] -= 1
                if remaining[0] == 0:
                    completions.set()

        inflight: Dict[int, Tuple[float, float, int]] = {}

        def try_assign(
            qid: int, qc: QueryClass, arrival_s: float, resubmissions: int
        ) -> bool:
            candidates = self.candidates(qc.index)
            if not candidates:
                with result_lock:
                    remaining[0] -= 1
                    result.unserved += 1
                    if remaining[0] == 0:
                        completions.set()
                return True
            # Both mechanisms wait for estimate replies from all nodes.
            probe_s = (
                max(
                    self._probe_latency_ms * self._nodes[nid].slowdown
                    for nid in candidates
                )
                / 1000.0
            )
            time.sleep(probe_s)
            estimates = {
                nid: self._nodes[nid].estimate_ms(qc) for nid in candidates
            }
            if mechanism == "qa-nt":
                with agents_lock:
                    offers = []
                    for nid in candidates:
                        agent = agents[nid]
                        # Price dynamics always run; the supply vector is
                        # only enforced while the node's prices signal
                        # overload (Section 5.1 threshold rule).
                        offering = agent.would_offer(qc.index)
                        enforcing = (
                            agent.max_price >= self.ACTIVATION_THRESHOLD
                        )
                        if offering or not enforcing:
                            offers.append(nid)
                    if not offers:
                        return False
                    chosen = min(
                        offers,
                        key=lambda nid: estimates[nid]
                        + self._backlog_snapshot(nid),
                    )
                    agent = agents[chosen]
                    if agent.remaining_supply[qc.index] >= 1:
                        agent.accept(qc.index)
            else:
                chosen = min(
                    candidates,
                    key=lambda nid: estimates[nid] + self._backlog_snapshot(nid),
                )
            assigned_s = time.monotonic()
            with self._backlog_lock:
                self._backlog_ms[chosen] += estimates[chosen]
            with result_lock:
                inflight[qid] = (arrival_s, assigned_s, resubmissions)
            self._nodes[chosen].submit(
                qid, qc, rng.randrange(1000), on_complete
            )
            return True

        def retry_pending() -> None:
            with pending_lock:
                retry, pending[:] = list(pending), []
            for qid, qc, arrival_s, resubs in retry:
                if not try_assign(qid, qc, arrival_s, resubs + 1):
                    with pending_lock:
                        pending.append((qid, qc, arrival_s, resubs + 1))

        next_retry = time.monotonic() + period_ms / 1000.0
        for qid in range(num_queries):
            time.sleep(rng.uniform(0.0, 2.0 * mean_interarrival_ms) / 1000.0)
            if time.monotonic() >= next_retry:
                retry_pending()
                next_retry = time.monotonic() + period_ms / 1000.0
            qc = rng.choice(self._classes)
            arrival_s = time.monotonic()
            if not try_assign(qid, qc, arrival_s, 0):
                with pending_lock:
                    pending.append((qid, qc, arrival_s, 0))

        # Drain: keep retrying refused queries until everything finished.
        deadline = time.monotonic() + 120.0
        while not completions.is_set() and time.monotonic() < deadline:
            retry_pending()
            with pending_lock:
                has_pending = bool(pending)
            completions.wait(timeout=period_ms / 1000.0)
            if not has_pending and completions.is_set():
                break
        stop_periods.set()
        with pending_lock:
            result.unserved += len(pending)
        return result

    # -- internals ----------------------------------------------------------------------

    def _backlog_snapshot(self, node_id: int) -> float:
        with self._backlog_lock:
            return self._backlog_ms[node_id]

    def _node_supply_set(
        self, node_id: int, period_ms: float
    ) -> CapacitySupplySet:
        node = self._nodes[node_id]
        costs = []
        for qc in self._classes:
            if node.holds(qc.relation_ids):
                costs.append(max(0.1, node.estimate_ms(qc)))
            else:
                costs.append(float("inf"))
        max_cost = max((c for c in costs if c != float("inf")), default=0.0)
        allowance = period_ms + self.ALLOWANCE_FACTOR * max_cost
        free = max(0.0, allowance - self._backlog_snapshot(node_id))
        return CapacitySupplySet(costs, free)

    def _period_loop(
        self,
        agents: Dict[int, QantPricingAgent],
        agents_lock: threading.Lock,
        period_ms: float,
        stop: threading.Event,
    ) -> None:
        while not stop.wait(timeout=period_ms / 1000.0):
            with agents_lock:
                for nid, agent in agents.items():
                    if agent.in_period:
                        agent.end_period()
                    agent.rebind_supply_set(
                        self._node_supply_set(nid, period_ms)
                    )
                    agent.begin_period()

    # -- lifecycle --------------------------------------------------------------------------

    def close(self) -> None:
        """Shut down every node's worker thread and connection."""
        for node in self._nodes.values():
            node.close()

    def __enter__(self) -> "DbmsFederation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
