"""Bench E6 — regenerate Figure 5b (QA-NT advantage vs workload frequency).

Paper shape: QA-NT beats Greedy at every frequency from 0.05 to 2 Hz at
80 % average load, with the improvement shrinking as frequency rises.
"""

from repro.experiments.fig5 import run_fig5b


def test_bench_fig5b(benchmark, save_result, bench_nodes, full_scale):
    frequencies = (
        (0.05, 0.1, 0.25, 0.5, 1.0, 2.0) if full_scale else (0.05, 0.5, 2.0)
    )
    result = benchmark.pedantic(
        run_fig5b,
        kwargs=dict(
            frequencies_hz=frequencies,
            num_nodes=bench_nodes,
            horizon_ms=40_000.0,
            load_fraction=0.9,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig5b", result.render())
    # QA-NT never collapses: worst case stays within 20% of Greedy.
    assert all(r > 0.8 for r in result.greedy_normalised)
