"""Two-random-probes allocation (Mitzenmacher, cited as [10]).

Probe two candidate servers chosen uniformly at random and send the query
to the one with the lower current load.  Needs very few messages and beats
round-robin by exploiting a little randomness, but (as the paper's Figure 4
shows) still fails to fully balance a heterogeneous federation, ending up
between round-robin and BNQRD.
"""

from __future__ import annotations

from ..query.model import Query
from .base import Allocator, AssignmentDecision

__all__ = [
    "TwoRandomProbesAllocator",
]


class TwoRandomProbesAllocator(Allocator):
    """Probe two random candidates; pick the less loaded one."""

    name = "two-probes"
    respects_autonomy = True
    distributed = True

    def assign(self, query: Query) -> AssignmentDecision:
        candidates = self.context.available_candidates(query.class_index)
        if not candidates:
            return AssignmentDecision(node_id=None)
        rng = self.context.rng
        pool = list(candidates)
        if len(pool) == 1:
            probes = pool
        else:
            probes = rng.sample(pool, 2)
        # One probe exchange regardless of the fault regime (fault-free,
        # both probes always reply; under faults only in-time replies may
        # be picked, and total silence is a refusal).
        exchange = self._request_bids(query, probes)
        delay = exchange.delay_ms
        messages = exchange.messages
        if exchange.silent:
            return AssignmentDecision(
                node_id=None, delay_ms=delay, messages=messages
            )
        probes = exchange.replied
        nodes = self.context.nodes
        # Probes return a queue-length count — cheap to serve, but blind
        # to how expensive the queued work (or this query) is on the
        # probed machine, which is what caps this mechanism's performance
        # in heterogeneous federations (Figure 4).
        chosen = min(probes, key=lambda nid: (nodes[nid].queued_queries(), nid))
        return AssignmentDecision(chosen, delay_ms=delay, messages=messages)
