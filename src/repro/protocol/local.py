"""An in-process asyncio market: the protocol's second transport backend.

This module proves the transport seam is real.  It runs a small QA-NT
market end-to-end — one worker coroutine per server node, protocol
messages travelling as encoded JSON through per-node inbox queues — with
**zero imports from the simulator**.  The same :class:`~repro.protocol
.session.MarketSession` that can drive the discrete-event simulator's
``SimTransport`` drives this one unchanged, which is exactly the property
a future HTTP/TCP broker daemon needs.

Three pieces:

* :class:`LocalNode` — a self-contained market agent in the paper's
  mould: per-period supply solved by a greedy price-density fill of its
  capacity, quotes of ``backlog + cost``, refusals that raise the class
  price, period ticks that decay unsold prices and re-solve supply.
* :class:`LocalAsyncTransport` — the asyncio fan-out.  Requests are
  *encoded to JSON and decoded on the far side*, so every exchange
  exercises the codec as a wire format.  Network latency is modelled, not
  slept: per-leg delays are drawn deterministically from a seeded RNG
  before any coroutine is spawned (coroutine interleaving never touches
  the RNG), and a round trip slower than the bid timeout is scored as
  silence exactly like the simulator's faulty fan-out.  A generous
  real-time guard on each exchange keeps a buggy worker from hanging the
  caller.
* :func:`run_local_market` — the demo harness: allocate a stream of
  queries across a node fleet through :class:`MarketSession`, ticking the
  market period every ``queries_per_period`` submissions.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .messages import (
    AssignQuery,
    BidRequest,
    CompletionReport,
    Message,
    PeriodTick,
    ProtocolError,
    Quote,
    Refusal,
    decode,
    encode,
)
from .session import MarketSession, NegotiationPolicy
from .transport import FanoutResult, Transport

__all__ = [
    "LocalNode",
    "LocalAsyncTransport",
    "MarketReport",
    "run_local_market",
]

#: Inbox items: the encoded request plus the future its reply resolves.
_Envelope = Tuple[str, "asyncio.Future[str]"]


class LocalNode:
    """A self-contained QA-NT-style server agent.

    Each period the node solves its supply by greedily filling its
    processing capacity with the classes of highest *price density*
    (price per unit cost) — a deliberately small re-expression of the
    paper's eq. 4 resource-allocation step that keeps this package free
    of simulator imports.  Quotes estimate completion as current backlog
    plus the class cost; a refusal is a trading failure and raises the
    class price; a period tick decays the prices of classes with unsold
    supply, drains the backlog, and re-solves supply at the new prices.
    """

    def __init__(
        self,
        node_id: int,
        class_costs_ms: Sequence[float],
        capacity_ms: float,
        price_step: float = 0.10,
        price_decay: float = 0.95,
    ) -> None:
        if not class_costs_ms:
            raise ValueError("a node needs at least one query class")
        if any(cost <= 0 for cost in class_costs_ms):
            raise ValueError("class costs must be positive")
        if capacity_ms <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < price_step:
            raise ValueError("price step must be positive")
        if not 0.0 < price_decay <= 1.0:
            raise ValueError("price decay must be in (0, 1]")
        self.node_id = node_id
        self.class_costs_ms: Tuple[float, ...] = tuple(class_costs_ms)
        self.capacity_ms = capacity_ms
        self.price_step = price_step
        self.price_decay = price_decay
        self.prices: List[float] = [1.0] * len(self.class_costs_ms)
        self.backlog_ms = 0.0
        self.quotes_sent = 0
        self.refusals_sent = 0
        self.queries_accepted = 0
        self.supply: List[int] = self._solve_supply()

    def _solve_supply(self) -> List[int]:
        """Greedy price-density fill of the period's capacity (eq. 4 in
        miniature): repeatedly grant one unit to the affordable class
        with the highest *marginal* price density.  The marginal density
        ``price / (cost * (units + 1))`` models concave per-class revenue
        — each extra unit of a class is worth less — so supply spreads
        across classes in proportion to their price/cost ratios instead
        of collapsing onto the single cheapest class."""
        remaining = self.capacity_ms
        supply = [0] * len(self.class_costs_ms)
        while True:
            best = -1
            best_density = -1.0
            for index, cost in enumerate(self.class_costs_ms):
                if cost > remaining:
                    continue
                density = self.prices[index] / (cost * (supply[index] + 1))
                if density > best_density:
                    best = index
                    best_density = density
            if best < 0:
                return supply
            supply[best] += 1
            remaining -= self.class_costs_ms[best]

    def handle(self, message: Message) -> Optional[Message]:
        """Process one protocol message; return the reply, if any."""
        if isinstance(message, BidRequest):
            return self._on_bid_request(message)
        if isinstance(message, AssignQuery):
            return self._on_assign(message)
        if isinstance(message, PeriodTick):
            self._on_period_tick(message)
            return None
        # Quotes, refusals and completion reports are client-bound;
        # a server that receives one simply ignores it.
        return None

    def _on_bid_request(self, request: BidRequest) -> Message:
        index = request.class_index
        if not 0 <= index < len(self.class_costs_ms):
            return Refusal(
                qid=request.qid, node_id=self.node_id, class_index=index
            )
        if self.supply[index] > 0:
            self.quotes_sent += 1
            return Quote(
                qid=request.qid,
                node_id=self.node_id,
                class_index=index,
                estimated_completion_ms=self.backlog_ms
                + self.class_costs_ms[index],
            )
        # Trading failure: the price has risen by the time the refusal
        # leaves the node — the QA-NT price dynamic.
        self.prices[index] *= 1.0 + self.price_step
        self.refusals_sent += 1
        return Refusal(
            qid=request.qid, node_id=self.node_id, class_index=index
        )

    def _on_assign(self, assign: AssignQuery) -> Message:
        index = assign.class_index % len(self.class_costs_ms)
        cost = self.class_costs_ms[index]
        if self.supply[index] > 0:
            self.supply[index] -= 1
        started = self.backlog_ms
        self.backlog_ms = started + cost
        self.queries_accepted += 1
        return CompletionReport(
            qid=assign.qid,
            node_id=self.node_id,
            class_index=index,
            started_ms=started,
            finished_ms=self.backlog_ms,
        )

    def _on_period_tick(self, tick: PeriodTick) -> None:
        for index, unsold in enumerate(self.supply):
            if unsold > 0:
                self.prices[index] *= self.price_decay
        self.backlog_ms = max(0.0, self.backlog_ms - tick.period_ms)
        self.supply = self._solve_supply()


class LocalAsyncTransport(Transport):
    """Asyncio fan-out over per-node inbox queues (see module docs)."""

    #: Real-time guard per exchange — not the market's bid timeout, just
    #: a backstop so a wedged worker cannot hang the calling thread.
    GUARD_SECONDS = 5.0

    def __init__(
        self,
        nodes: Sequence[LocalNode],
        bid_timeout_ms: float = 10.0,
        latency_range_ms: Tuple[float, float] = (0.5, 2.0),
        drop_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        if bid_timeout_ms <= 0:
            raise ValueError("bid timeout must be positive")
        low, high = latency_range_ms
        if not 0.0 <= low <= high:
            raise ValueError("latency range must satisfy 0 <= low <= high")
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")
        self.bid_timeout_ms = bid_timeout_ms
        self.latency_range_ms = (low, high)
        self.drop_probability = drop_probability
        self._rng = random.Random(seed)
        self._nodes: Dict[int, LocalNode] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise ValueError("duplicate node id %d" % node.node_id)
            self._nodes[node.node_id] = node
        self._loop = asyncio.new_event_loop()
        self._inboxes: Dict[int, "asyncio.Queue[_Envelope]"] = {}
        self._workers: List["asyncio.Task[None]"] = []
        self._started = False
        self._closed = False

    # -- transport interface ------------------------------------------------

    def fanout(
        self,
        origin: int,
        peers: Sequence[int],
        request: Optional[Message] = None,
    ) -> FanoutResult:
        if self._closed:
            raise RuntimeError("transport is closed")
        if request is None:
            raise ProtocolError(
                "LocalAsyncTransport moves real messages; request is required"
            )
        peers_t = tuple(peers)
        for peer in peers_t:
            if peer not in self._nodes:
                raise KeyError("unknown peer node %d" % peer)
        payload = encode(request)
        # Draw every latency and drop decision *before* any coroutine is
        # spawned: coroutine interleaving must never reach the RNG, or
        # two runs with the same seed could diverge.
        plans = [self._plan_leg() for _ in peers_t]
        raw = self._loop.run_until_complete(
            self._fanout_async(
                [p for p, plan in zip(peers_t, plans) if plan is not None],
                payload,
            )
        )
        raw_replies = iter(raw)
        delivered: List[int] = []
        replied: List[int] = []
        replies: List[Message] = []
        messages = 0
        worst_ms = 0.0
        timed_out = False
        for peer, plan in zip(peers_t, plans):
            if plan is None:
                # The request leg was dropped: one message on the wire,
                # no delivery, the client waits out the full timeout.
                messages += 1
                timed_out = True
                continue
            round_trip_ms = plan
            delivered.append(peer)
            messages += 2
            reply_payload = next(raw_replies)
            if round_trip_ms > self.bid_timeout_ms:
                timed_out = True
                continue
            replied.append(peer)
            worst_ms = max(worst_ms, round_trip_ms)
            if reply_payload:
                replies.append(decode(reply_payload))
        delay_ms = self.bid_timeout_ms if timed_out else worst_ms
        return FanoutResult(
            delay_ms=delay_ms,
            messages=messages,
            delivered=tuple(delivered),
            replied=tuple(replied),
            replies=tuple(replies),
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._started:
            self._loop.run_until_complete(self._shutdown_workers())
        self._loop.close()

    # -- node accounting ----------------------------------------------------

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(self._nodes)

    def node(self, node_id: int) -> LocalNode:
        return self._nodes[node_id]

    def broadcast_tick(self, tick: PeriodTick) -> FanoutResult:
        """Deliver a period boundary to every node in the market."""
        return self.fanout(-1, tuple(self._nodes), tick)

    # -- internals ----------------------------------------------------------

    def _plan_leg(self) -> Optional[float]:
        """Pre-draw one peer's fate: ``None`` for a dropped request,
        otherwise the simulated round-trip latency in milliseconds."""
        if (
            self.drop_probability > 0.0
            and self._rng.random() < self.drop_probability
        ):
            return None
        low, high = self.latency_range_ms
        request_ms = self._rng.uniform(low, high)
        reply_ms = self._rng.uniform(low, high)
        return request_ms + reply_ms

    async def _fanout_async(
        self, peers: Sequence[int], payload: str
    ) -> List[str]:
        self._ensure_started()
        return list(
            await asyncio.gather(
                *(self._exchange(peer, payload) for peer in peers)
            )
        )

    async def _exchange(self, peer: int, payload: str) -> str:
        future: "asyncio.Future[str]" = self._loop.create_future()
        await self._inboxes[peer].put((payload, future))
        return await asyncio.wait_for(future, timeout=self.GUARD_SECONDS)

    def _ensure_started(self) -> None:
        if self._started:
            return
        self._started = True
        for node_id in self._nodes:
            self._inboxes[node_id] = asyncio.Queue()
            self._workers.append(
                self._loop.create_task(self._serve(node_id))
            )

    async def _serve(self, node_id: int) -> None:
        """One worker coroutine per node: decode, handle, encode, reply."""
        node = self._nodes[node_id]
        inbox = self._inboxes[node_id]
        while True:
            payload, future = await inbox.get()
            reply = node.handle(decode(payload))
            if not future.done():
                # An empty payload is a bare ack (period ticks have no
                # reply message but the client still hears back).
                future.set_result(encode(reply) if reply is not None else "")

    async def _shutdown_workers(self) -> None:
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)


@dataclass(frozen=True)
class MarketReport:
    """Summary of one :func:`run_local_market` run."""

    assigned: int
    failed: int
    messages: int
    quotes_seen: int
    periods: int
    #: Queries won per node id (only nodes that won at least once).
    per_node: Dict[int, int] = field(default_factory=dict)

    @property
    def nodes_used(self) -> int:
        return len(self.per_node)


def run_local_market(
    num_nodes: int = 4,
    num_queries: int = 120,
    num_classes: int = 2,
    queries_per_period: int = 40,
    period_ms: float = 500.0,
    seed: int = 0,
) -> MarketReport:
    """Allocate ``num_queries`` across ``num_nodes`` via the asyncio market.

    Every query runs the full :class:`MarketSession` negotiation —
    fan-out, winner selection, assignment confirm, backoff on refusal —
    over :class:`LocalAsyncTransport`, with a :class:`~repro.protocol
    .messages.PeriodTick` broadcast every ``queries_per_period``
    submissions so prices decay and supply re-solves mid-run.
    """
    if num_nodes < 1 or num_queries < 1 or num_classes < 1:
        raise ValueError("market dimensions must be positive")
    rng = random.Random(seed)
    class_costs = tuple(6.0 + 5.0 * index for index in range(num_classes))
    mean_cost = sum(class_costs) / len(class_costs)
    # Size per-node capacity so the fleet can absorb a period's demand
    # with headroom — the market should allocate, not starve.
    capacity_ms = 2.0 * mean_cost * queries_per_period / num_nodes
    nodes = [
        LocalNode(
            node_id=index,
            class_costs_ms=class_costs,
            capacity_ms=capacity_ms,
        )
        for index in range(num_nodes)
    ]
    transport = LocalAsyncTransport(nodes, seed=seed)
    session = MarketSession(
        transport,
        NegotiationPolicy(
            bid_timeout_ms=transport.bid_timeout_ms, max_attempts=4
        ),
    )
    peers = transport.node_ids
    assigned = 0
    failed = 0
    messages = 0
    quotes_seen = 0
    periods = 0
    per_node: Dict[int, int] = {}
    try:
        for qid in range(num_queries):
            if qid and qid % queries_per_period == 0:
                periods += 1
                tick = transport.broadcast_tick(
                    PeriodTick(period_index=periods, period_ms=period_ms)
                )
                messages += tick.messages
            request = BidRequest(
                qid=qid,
                class_index=rng.randrange(num_classes),
                origin_node=-1,
            )
            outcome = session.negotiate(request, peers)
            messages += outcome.messages
            quotes_seen += outcome.quotes_seen
            if outcome.assigned and outcome.node_id is not None:
                assigned += 1
                per_node[outcome.node_id] = (
                    per_node.get(outcome.node_id, 0) + 1
                )
            else:
                failed += 1
    finally:
        transport.close()
    return MarketReport(
        assigned=assigned,
        failed=failed,
        messages=messages,
        quotes_seen=quotes_seen,
        periods=periods,
        per_node=per_node,
    )
