"""repro — reproduction of "Autonomic Query Allocation based on
Microeconomics Principles" (Pentaris & Ioannidis, ICDE 2007).

The package implements the paper's query-market mechanism (QA-NT) and
every substrate its evaluation depends on:

* :mod:`repro.core` — query markets: vectors, Pareto optimality, supply
  optimisation, tatonnement, and the QA-NT pricing agent;
* :mod:`repro.sim` — a discrete-event simulator of a federation of
  heterogeneous autonomous RDBMSs;
* :mod:`repro.catalog` — the synthetic mirrored catalog (Table 3);
* :mod:`repro.query` — SJPS query classes, SQL rendering, cost model,
  and history-calibrated estimators;
* :mod:`repro.workload` — sinusoid, Zipf and uniform workload generators;
* :mod:`repro.allocation` — QA-NT plus every baseline of Section 4;
* :mod:`repro.protocol` — the transport-agnostic market-protocol core
  (typed messages, versioned codec, MarketSession) shared by the
  simulator and live brokers;
* :mod:`repro.dbms` — a real substrate: SQLite server nodes driven by a
  threaded coordinator (the paper's Section 5.2 deployment);
* :mod:`repro.experiments` — one driver per paper table and figure.

Subpackages load lazily (PEP 562): ``repro.protocol`` is importable by a
broker daemon without dragging in the simulator stack, and nothing else
pays import cost it does not use.
"""

import importlib

__version__ = "1.0.0"

_SUBPACKAGES = frozenset(
    {
        "allocation",
        "catalog",
        "core",
        "protocol",
        "query",
        "sim",
        "workload",
    }
)

__all__ = ["__version__", *sorted(_SUBPACKAGES)]


def __getattr__(name: str):
    if name in _SUBPACKAGES:
        return importlib.import_module("." + name, __name__)
    raise AttributeError(
        "module %r has no attribute %r" % (__name__, name)
    )


def __dir__():
    return sorted(set(globals()) | _SUBPACKAGES)
