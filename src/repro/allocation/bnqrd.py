"""BNQRD: balanced query-routing via centrally computed unbalance factors.

Models the algorithm of Carey, Livny & Lu (cited as [1, 2]): a central
coordinator periodically collects every node's disclosed load (outstanding
CPU+I/O work), computes per-node *unbalance factors* (how far each node
sits from the network-wide average), and routes each query to the
candidate whose factor is most negative — spreading usage evenly across
nodes.

Three properties the paper calls out are reproduced faithfully:

* it is centralised and requires nodes to disclose load, so it breaks
  administrative autonomy (Table 2);
* load reports are refreshed periodically, not per decision, so bursts
  herd toward whichever node looked emptiest at the last refresh;
* it equalises the load of fast and slow nodes alike and ignores how
  expensive *this* query is on the chosen node, which is why it performs
  poorly in heterogeneous federations (Figure 4): a slow node with a
  short queue looks attractive even though executing there takes far
  longer.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..query.model import Query
from .base import Allocator, AssignmentDecision

__all__ = [
    "BnqrdAllocator",
]


class BnqrdAllocator(Allocator):
    """Route to the candidate with the most negative unbalance factor."""

    name = "bnqrd"
    respects_autonomy = False
    distributed = False

    def __init__(self, refresh_ms: float = 500.0):
        """``refresh_ms`` is how often the coordinator re-polls node
        loads; decisions between refreshes use the cached factors."""
        super().__init__()
        if refresh_ms <= 0:
            raise ValueError("refresh interval must be positive")
        self._refresh_ms = refresh_ms
        self._cached_loads: Dict[int, float] = {}
        self._cache_time: Optional[float] = None
        #: Work the coordinator routed since the last refresh, so repeated
        #: decisions within one refresh window do not all pick the same
        #: node (the coordinator knows its own routing decisions even if
        #: node loads are stale).
        self._routed_since_refresh: Dict[int, int] = {}

    def _refresh_if_due(self) -> None:
        now = self.context.simulator.now
        if self._cache_time is not None and now - self._cache_time < self._refresh_ms:
            return
        self._cached_loads = {
            nid: node.current_load_ms()
            for nid, node in self.context.nodes.items()
        }
        self._cache_time = now
        self._routed_since_refresh = {nid: 0 for nid in self.context.nodes}

    def assign(self, query: Query) -> AssignmentDecision:
        candidates = self.context.available_candidates(query.class_index)
        if not candidates:
            return AssignmentDecision(node_id=None)
        self._refresh_if_due()
        mean_load = sum(self._cached_loads.values()) / len(self._cached_loads)

        def unbalance(node_id: int) -> float:
            # The factor balances *query counts* on top of the last load
            # snapshot — the coordinator cannot know how expensive the
            # query is on each node (that would require per-node cost
            # estimates, which BNQRD does not collect).
            routed = self._routed_since_refresh.get(node_id, 0)
            return (
                self._cached_loads[node_id]
                + routed * mean_load / max(1, len(self._cached_loads))
                - mean_load
            )

        chosen = min(candidates, key=lambda nid: (unbalance(nid), nid))
        self._routed_since_refresh[chosen] = (
            self._routed_since_refresh.get(chosen, 0) + 1
        )
        # Client -> coordinator -> client -> server: the coordinator is
        # reliable control-plane infrastructure, only the dispatch leg is
        # ever exposed to drops, spikes, and partitions.
        return self._coordinated_dispatch(query, chosen)
