"""Bench E8 — regenerate Figure 6 (Zipf heterogeneous workload).

Paper shape: QA-NT improves on Greedy by 13–26 % while the system is
overloaded (per-class mean inter-arrival below ≈17 s) and the two
converge once the overload clears.
"""

from repro.experiments.fig6 import run_fig6


def test_bench_fig6(benchmark, save_result, full_scale):
    if full_scale:
        kwargs = dict(
            interarrivals_ms=(
                10.0, 100.0, 1_000.0, 5_000.0, 10_000.0, 17_000.0, 20_000.0
            ),
            num_nodes=100,
            num_relations=1000,
            num_classes=100,
            max_queries=10_000,
            horizon_ms=300_000.0,
            seed=0,
        )
    else:
        kwargs = dict(
            interarrivals_ms=(1_000.0, 10_000.0, 17_000.0),
            num_nodes=30,
            num_relations=300,
            num_classes=30,
            max_queries=2_500,
            horizon_ms=200_000.0,
            seed=0,
        )
    result = benchmark.pedantic(run_fig6, kwargs=kwargs, rounds=1, iterations=1)
    save_result("fig6", result.render())
    by_gap = dict(zip(result.interarrivals_ms, result.greedy_normalised))
    # Overload regime: QA-NT ahead.
    assert by_gap[1_000.0] > 1.0
    # At/after the crossover: parity (within 15%).
    assert abs(by_gap[17_000.0] - 1.0) < 0.15
