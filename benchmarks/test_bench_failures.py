"""Bench F1 — node-failure extension (the Section 1 motivating scenario).

A third of the federation fails mid-run under a steady load sized against
the healthy capacity; response times before, during, and after the outage
are reported for QA-NT and Greedy.
"""

from repro.experiments.failures import run_failures


def test_bench_failures(benchmark, save_result, bench_nodes):
    result = benchmark.pedantic(
        run_failures,
        kwargs=dict(
            num_nodes=bench_nodes,
            failed_fraction=0.3,
            load_fraction=0.8,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("failures", result.render())
    for mechanism in ("qa-nt", "greedy"):
        # Losing 30% of nodes at 80% load must visibly degrade service...
        assert result.degradation(mechanism) > 1.0
        phases = result.phases[mechanism]
        # ...and the system must recover after the nodes return.
        assert phases["after"] < phases["during"]
    # The paper's Section 1 claim — a good allocator minimises how long
    # the unavailability lingers: QA-NT's admission control returns it to
    # near-baseline service once the nodes are back, while Greedy is
    # still draining the queues it built up.
    qant = result.phases["qa-nt"]
    assert qant["after"] <= 1.5 * qant["before"]
