"""Round-robin allocation: the other commercial client-level baseline.

Each client cycles through the candidate servers of a class in id order.
Like :class:`repro.allocation.random_choice.RandomAllocator`, it spreads
queries evenly and therefore mis-serves heterogeneous federations (paper
Figure 4).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..query.model import Query
from .base import Allocator, AssignmentDecision

__all__ = [
    "RoundRobinAllocator",
]


class RoundRobinAllocator(Allocator):
    """Cycle through candidates, independently per (client, class)."""

    name = "round-robin"
    respects_autonomy = True
    distributed = True

    def __init__(self) -> None:
        super().__init__()
        self._cursors: Dict[Tuple[int, int], int] = {}

    def assign(self, query: Query) -> AssignmentDecision:
        candidates = self.context.available_candidates(query.class_index)
        if not candidates:
            return AssignmentDecision(node_id=None)
        key = (query.origin_node, query.class_index)
        cursor = self._cursors.get(key)
        if cursor is None:
            # Independent clients start their cycles at random offsets;
            # without this every client hammers the same low-id server
            # first, which is a synchronisation artefact rather than the
            # behaviour of the commercial client-level mechanism.
            cursor = self.context.rng.randrange(len(candidates))
        chosen = candidates[cursor % len(candidates)]
        self._cursors[key] = cursor + 1
        # The cursor has advanced regardless of the exchange outcome — a
        # resubmission after a lost dispatch tries the next server.
        return self._dispatch(query, chosen)
