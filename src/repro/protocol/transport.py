"""The transport seam of the market protocol.

A :class:`Transport` moves protocol messages between a client and a set of
server peers; everything above it (:class:`~repro.protocol.session
.MarketSession`, the allocators) is transport-agnostic.  Three backends
exist today:

* ``repro.sim.transport.SimTransport`` — the discrete-event simulator's
  network (latency model, message counting, fault injection);
* :class:`~repro.protocol.local.LocalAsyncTransport` — an in-process
  asyncio market with one worker coroutine per node, the stepping stone
  to HTTP/TCP broker daemons;
* ``repro.sim.shards.ShardTransport`` — a pipe-backed pool of forked
  shard workers (peers are *shards*, not nodes): the sharded
  federation's batched bid/quote barriers travel through it, codec and
  all.

The one verb both speak is :meth:`Transport.fanout`, whose
:class:`FanoutResult` lifts the semantics the simulator's faulty fan-out
always had into a typed, documented contract:

* ``delivered`` — peers whose *request* arrived.  Server-side effects
  (QA-NT's refusal price dynamics) happen for these even when the client
  never hears back — the stale-price regime partitioned markets exhibit;
* ``replied`` — the subset whose reply the client received within the
  bid timeout; only these can win the allocation;
* ``delay_ms`` — the slowest in-time round trip, or the full timeout
  when any peer stayed silent (the client waited it out);
* ``messages`` — legs actually put on the wire (a severed or dropped
  request produces no reply leg);
* ``replies`` — the reply payloads themselves, in ``replied`` order, for
  transports that materialise message bodies (the simulator charges the
  exchange without building payloads, so it leaves this empty).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .messages import Message

__all__ = [
    "FanoutResult",
    "Transport",
]


@dataclass(frozen=True)
class FanoutResult:
    """Outcome of one request/reply fan-out exchange (see module docs)."""

    delay_ms: float
    messages: int
    delivered: Tuple[int, ...]
    replied: Tuple[int, ...]
    replies: Tuple[Message, ...] = field(default=())

    @property
    def silent(self) -> bool:
        """True when no reply beat the timeout (total silence)."""
        return not self.replied

    def as_legacy_tuple(
        self,
    ) -> Tuple[float, int, Tuple[int, ...], Tuple[int, ...]]:
        """The pre-protocol 4-tuple contract, kept for equivalence tests."""
        return (self.delay_ms, self.messages, self.delivered, self.replied)


class Transport(abc.ABC):
    """Moves one client's protocol messages to a set of server peers."""

    @abc.abstractmethod
    def fanout(
        self,
        origin: int,
        peers: Sequence[int],
        request: Optional[Message] = None,
    ) -> FanoutResult:
        """Send ``request`` from ``origin`` to every peer; gather replies.

        ``request`` may be ``None`` for transports that only *charge* the
        exchange (the simulator models message counts and latency, not
        payload bytes); live transports require a real message and raise
        :class:`~repro.protocol.messages.ProtocolError` without one.
        """

    def close(self) -> None:
        """Release transport resources; the default is a no-op."""
        return None
