"""Unit tests for repro.query.model (classes, instances, generation)."""

import pytest

from repro.catalog import Placement
from repro.query.model import (
    Query,
    QueryClass,
    QueryClassParameters,
    generate_query_classes,
)


class TestQueryClass:
    def test_num_joins(self):
        qc = QueryClass(index=0, relation_ids=(1, 2, 3))
        assert qc.num_joins == 2

    def test_rejects_empty_relations(self):
        with pytest.raises(ValueError):
            QueryClass(index=0, relation_ids=())

    def test_rejects_duplicate_relations(self):
        with pytest.raises(ValueError):
            QueryClass(index=0, relation_ids=(1, 1))

    def test_rejects_bad_selectivity(self):
        with pytest.raises(ValueError):
            QueryClass(index=0, relation_ids=(1,), selectivity=0.0)
        with pytest.raises(ValueError):
            QueryClass(index=0, relation_ids=(1,), selectivity=1.5)

    def test_candidate_nodes(self):
        placement = Placement({0: {1, 2}, 1: {2}, 2: {1, 2, 3}})
        qc = QueryClass(index=0, relation_ids=(1, 2))
        assert qc.candidate_nodes(placement) == frozenset({0, 2})


class TestQuery:
    def test_defaults(self):
        q = Query(qid=1, class_index=2, origin_node=3, arrival_ms=4.0)
        assert q.resubmissions == 0
        assert q.assigned_ms is None

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            Query(qid=0, class_index=0, origin_node=0, arrival_ms=-1.0)


class TestGeneration:
    def make_placement(self):
        # Three overlapping nodes sharing a pool of relations.
        shared = set(range(20))
        return Placement(
            {0: shared, 1: shared | {20}, 2: shared | {21}, 3: {22}}
        )

    def test_generates_requested_count(self, small_catalog_world):
        __, placement, classes, __, __ = small_catalog_world
        assert len(classes) == 6
        assert [qc.index for qc in classes] == list(range(6))

    def test_classes_have_multiple_candidates(self, small_catalog_world):
        __, placement, classes, __, __ = small_catalog_world
        for qc in classes:
            assert len(qc.candidate_nodes(placement)) >= 2

    def test_join_bounds_respected(self):
        placement = self.make_placement()
        params = QueryClassParameters(num_classes=10, min_joins=1, max_joins=3)
        classes = generate_query_classes(None, placement, params, seed=0)
        for qc in classes:
            assert 1 <= qc.num_joins <= 3

    def test_selectivity_bounds_respected(self):
        placement = self.make_placement()
        params = QueryClassParameters(
            num_classes=10, max_joins=2, min_selectivity=0.3, max_selectivity=0.4
        )
        classes = generate_query_classes(None, placement, params, seed=1)
        for qc in classes:
            assert 0.3 <= qc.selectivity <= 0.4

    def test_deterministic_given_seed(self):
        placement = self.make_placement()
        params = QueryClassParameters(num_classes=5, max_joins=4)
        a = generate_query_classes(None, placement, params, seed=3)
        b = generate_query_classes(None, placement, params, seed=3)
        assert [qc.relation_ids for qc in a] == [qc.relation_ids for qc in b]

    def test_relations_drawn_from_holdings(self):
        placement = self.make_placement()
        params = QueryClassParameters(num_classes=10, max_joins=5)
        for qc in generate_query_classes(None, placement, params, seed=4):
            assert placement.holders(qc.relation_ids)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QueryClassParameters(num_classes=0)
        with pytest.raises(ValueError):
            QueryClassParameters(min_joins=5, max_joins=2)
        with pytest.raises(ValueError):
            QueryClassParameters(min_selectivity=0.9, max_selectivity=0.1)
