"""Tests for the microbenchmark subsystem (:mod:`repro.bench`)."""

import json

import pytest

from repro import cli
from repro.bench import (
    BENCH_SCHEMA_VERSION,
    KERNELS,
    Measurement,
    bench_payload,
    compare_payloads,
    confirm_regressions,
    find_regressions,
    measure,
    measure_peak,
    render_results,
    resolve_auto_baseline,
    run_benchmarks,
    write_bench_artifact,
)

#: Kernels ISSUE-level tooling relies on being present.
REQUIRED_KERNELS = {
    "qant.run_period",
    "qant.period_tick",
    "supply.greedy",
    "supply.proportional",
    "supply.exact",
    "vector.arith",
    "vector.aggregate",
    "sim.event_throughput",
    "proto.codec",
    "e2e.federation_sweep",
    "fed.fig5a_1000node",
    "fed.fig5a_sharded",
}


class TestRegistry:
    def test_at_least_six_kernels_registered(self):
        assert len(KERNELS) >= 6

    def test_required_kernels_present(self):
        assert REQUIRED_KERNELS <= set(KERNELS)

    def test_every_kernel_setup_returns_callable(self):
        # Exclude the expensive end-to-end kernel; its setup builds a
        # 20-node world and is covered by the CLI smoke in CI.
        for name, kernel in KERNELS.items():
            if name.startswith("e2e."):
                continue
            fn = kernel.setup()
            assert callable(fn)
            fn()  # one untimed execution must not raise

    def test_duplicate_registration_rejected(self):
        from repro.bench.kernels import register_kernel

        with pytest.raises(ValueError):
            register_kernel("vector.arith", "dup")(lambda: (lambda: None))


class TestHarness:
    def test_measure_reports_positive_time(self):
        ns_per_op, inner = measure(lambda: sum(range(50)), repeat=1)
        assert ns_per_op > 0
        assert inner >= 1

    def test_measure_rejects_zero_repeat(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeat=0)

    def test_measure_wall_mode_reports_positive_time(self):
        ns_per_op, inner = measure(
            lambda: sum(range(50)), repeat=1, wall=True
        )
        assert ns_per_op > 0
        assert inner >= 1

    def test_sharded_kernel_is_wall_timed(self):
        # Parent CPU time misses the forked shard workers entirely; the
        # kernel must opt into wall-clock timing.
        assert KERNELS["fed.fig5a_sharded"].wall_time
        assert KERNELS["fed.fig5a_localmarket"].wall_time
        assert not KERNELS["fed.fig5a_1000node"].wall_time

    def test_measure_peak_adds_child_process_peak(self):
        # Multi-process kernels surface their workers' RSS through a
        # `child_peak_kb` hook on the timed callable; `bench --mem` must
        # include it instead of silently reporting only the parent.
        def fn():
            return bytearray(64 * 1024)

        fn.child_peak_kb = lambda: 10_000.0
        assert measure_peak(fn) >= 10_000.0

    def test_unknown_filter_raises(self):
        with pytest.raises(ValueError, match="no benchmark kernel matches"):
            run_benchmarks(name_filter="definitely-not-a-kernel", repeat=1)

    def test_run_filtered_and_payload_schema(self, tmp_path):
        fast = {
            "vector.arith": KERNELS["vector.arith"],
            "vector.aggregate": KERNELS["vector.aggregate"],
        }
        results = run_benchmarks(
            name_filter="vector", repeat=1, kernels=fast
        )
        assert set(results) == set(fast)
        for measurement in results.values():
            assert measurement.ns_per_op > 0
            assert measurement.ops_per_s > 0
            assert measurement.repeat == 1

        payload = bench_payload(results, label="unit")
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["kind"] == "bench"
        assert payload["label"] == "unit"
        assert "python_version" in payload["environment"]
        assert set(payload["kernels"]) == set(fast)
        entry = payload["kernels"]["vector.arith"]
        assert {"description", "ns_per_op", "ops_per_s", "repeat"} <= set(
            entry
        )

        path = write_bench_artifact(payload, "unit", directory=str(tmp_path))
        assert path.name == "BENCH_unit.json"
        on_disk = json.loads(path.read_text())
        assert on_disk["kernels"].keys() == payload["kernels"].keys()

    def test_compare_payloads_speedup_factors(self):
        def entry(ns):
            return {"description": "", "ns_per_op": ns, "ops_per_s": 1e9 / ns}

        before = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "kernels": {"a": entry(200.0), "b": entry(100.0)},
        }
        after = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "kernels": {"a": entry(100.0)},
        }
        speedups = compare_payloads(before, after)
        assert speedups == {"a": 2.0}

    def test_compare_rejects_wrong_schema(self):
        good = {"schema_version": BENCH_SCHEMA_VERSION, "kind": "bench", "kernels": {}}
        bad = {"schema_version": 999, "kind": "bench", "kernels": {}}
        with pytest.raises(ValueError):
            compare_payloads(good, bad)

    def test_compare_accepts_schema_v1_baseline(self):
        # PR 3/4 artifacts predate the peak_kb field; they must remain
        # readable so `--baseline auto` can span the schema bump.
        old = {"schema_version": 1, "kind": "bench", "kernels": {}}
        new = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "kernels": {},
        }
        assert compare_payloads(old, new) == {}

    def test_find_regressions_flags_only_kernels_over_threshold(self):
        def entry(ns):
            return {"description": "", "ns_per_op": ns, "ops_per_s": 1e9 / ns}

        def measurement(name, ns):
            return Measurement(
                name=name, description="", ns_per_op=ns, repeat=1, inner_loops=1
            )

        baseline = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "kernels": {
                "fast": entry(100.0),
                "slow": entry(100.0),
                "gone": entry(100.0),
            },
        }
        results = {
            "fast": measurement("fast", 120.0),  # +20%: under threshold
            "slow": measurement("slow", 200.0),  # +100%: regression
            "new": measurement("new", 50.0),  # no baseline: ignored
        }
        regressions = find_regressions(baseline, results, threshold_pct=50.0)
        assert set(regressions) == {"slow"}
        assert regressions["slow"] == pytest.approx(100.0)

    @staticmethod
    def _suite(ns_by_name, as_measurements=False):
        if as_measurements:
            return {
                name: Measurement(
                    name=name,
                    description="",
                    ns_per_op=ns,
                    repeat=1,
                    inner_loops=1,
                )
                for name, ns in ns_by_name.items()
            }
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "kernels": {
                name: {
                    "description": "",
                    "ns_per_op": ns,
                    "ops_per_s": 1e9 / ns,
                }
                for name, ns in ns_by_name.items()
            },
        }

    def test_normalized_gate_forgives_suite_wide_slowdown(self):
        # Host phase: every kernel uniformly 1.5x slower.  The median
        # absorbs the common mode, so nothing is flagged...
        baseline = self._suite({"a": 100.0, "b": 200.0, "c": 400.0})
        uniform = self._suite(
            {"a": 150.0, "b": 300.0, "c": 600.0}, as_measurements=True
        )
        assert (
            find_regressions(baseline, uniform, 35.0, normalize_common=True)
            == {}
        )
        # ...but the un-normalised comparison still sees all three.
        assert set(find_regressions(baseline, uniform, 35.0)) == {
            "a",
            "b",
            "c",
        }

    def test_normalized_gate_still_catches_single_kernel_regression(self):
        baseline = self._suite({"a": 100.0, "b": 200.0, "c": 400.0})
        one_bad = self._suite(
            {"a": 150.0, "b": 300.0, "c": 1200.0}, as_measurements=True
        )
        flagged = find_regressions(
            baseline, one_bad, 35.0, normalize_common=True
        )
        assert set(flagged) == {"c"}
        assert flagged["c"] == pytest.approx(100.0)  # 3x raw / 1.5x common

    def test_normalization_needs_three_kernels(self):
        # Below three compared kernels the common mode can't be told
        # apart from a real regression: fall back to absolute.
        baseline = self._suite({"a": 100.0, "b": 200.0})
        slowed = self._suite(
            {"a": 150.0, "b": 300.0}, as_measurements=True
        )
        assert set(
            find_regressions(baseline, slowed, 35.0, normalize_common=True)
        ) == {"a", "b"}

    def test_normalization_never_penalises_fast_machines(self):
        # Median speedup (machine faster than baseline) must not inflate
        # the one kernel that didn't speed up: clamp the common mode at 1.
        baseline = self._suite({"a": 100.0, "b": 200.0, "c": 400.0})
        faster = self._suite(
            {"a": 50.0, "b": 100.0, "c": 400.0}, as_measurements=True
        )
        assert (
            find_regressions(baseline, faster, 35.0, normalize_common=True)
            == {}
        )

    def test_confirm_regressions_clears_transient_noise(self):
        # A fabricated slow sample against a generous baseline: the
        # re-measure sees the kernel's true (fast) speed and clears it.
        baseline = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "kernels": {
                "vector.arith": {
                    "description": "",
                    "ns_per_op": 1e9,
                    "ops_per_s": 1.0,
                }
            },
        }
        noisy = Measurement(
            name="vector.arith",
            description="",
            ns_per_op=1e10,
            repeat=1,
            inner_loops=1,
        )
        results = {"vector.arith": noisy}
        remaining = confirm_regressions(baseline, results, 50.0, repeat=1)
        assert remaining == {}
        # The confirmed (faster) measurement replaced the noisy sample.
        assert results["vector.arith"].ns_per_op < noisy.ns_per_op

    def test_confirm_regressions_keeps_real_regressions(self):
        # No real kernel runs in under a picosecond: the regression must
        # survive every confirmation round.
        baseline = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "kernels": {
                "vector.arith": {
                    "description": "",
                    "ns_per_op": 1e-3,
                    "ops_per_s": 1e12,
                }
            },
        }
        results = run_benchmarks(name_filter="vector.arith", repeat=1)
        remaining = confirm_regressions(baseline, results, 50.0, repeat=1)
        assert set(remaining) == {"vector.arith"}

    def test_find_regressions_rejects_negative_threshold(self):
        baseline = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "kernels": {},
        }
        with pytest.raises(ValueError):
            find_regressions(baseline, {}, threshold_pct=-1.0)

    def test_render_results_table(self):
        results = run_benchmarks(
            name_filter="vector.arith", repeat=1
        )
        table = render_results(results)
        assert "kernel" in table and "ns/op" in table
        assert "vector.arith" in table
        assert "peak KiB" not in table  # only shown when --mem ran

    def test_measure_peak_reports_positive_kib(self):
        peak = measure_peak(lambda: bytearray(512 * 1024))
        assert peak >= 512.0  # at least the 512 KiB buffer itself

    def test_run_benchmarks_mem_populates_peak_kb(self):
        results = run_benchmarks(
            name_filter="vector.arith", repeat=1, measure_mem=True
        )
        measurement = results["vector.arith"]
        assert measurement.peak_kb is not None
        assert measurement.peak_kb > 0
        entry = measurement.to_dict()
        assert entry["peak_kb"] == measurement.peak_kb
        table = render_results(results)
        assert "peak KiB" in table

    def test_peak_kb_absent_without_mem(self):
        results = run_benchmarks(name_filter="vector.arith", repeat=1)
        measurement = results["vector.arith"]
        assert measurement.peak_kb is None
        assert "peak_kb" not in measurement.to_dict()


class TestAutoBaseline:
    def test_picks_highest_pr_number(self, tmp_path):
        for name in (
            "BENCH_pr2.json",
            "BENCH_pr10.json",
            "BENCH_pr9.json",
            "BENCH_nightly.json",  # non-PR artifacts are ignored
            "BENCH_pr3.json.bak",
        ):
            (tmp_path / name).write_text("{}")
        resolved = resolve_auto_baseline(directory=str(tmp_path))
        assert resolved.name == "BENCH_pr10.json"

    def test_errors_when_no_pr_artifact_exists(self, tmp_path):
        (tmp_path / "BENCH_nightly.json").write_text("{}")
        with pytest.raises(ValueError, match="no committed BENCH_pr"):
            resolve_auto_baseline(directory=str(tmp_path))

    def test_repo_root_has_a_committed_baseline(self):
        # The Makefile/CI gate runs `--baseline auto` from the repo root;
        # a release that forgets to commit BENCH_pr<N>.json breaks it.
        resolved = resolve_auto_baseline()
        assert resolved.exists()


class TestCli:
    def test_bench_subcommand_writes_artifact(self, tmp_path, capsys):
        rc = cli.main(
            [
                "bench",
                "--filter",
                "vector",
                "--repeat",
                "1",
                "--json",
                "--label",
                "clitest",
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "vector.arith" in out
        artifact = tmp_path / "BENCH_clitest.json"
        assert artifact.exists()
        payload = json.loads(artifact.read_text())
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert "vector.aggregate" in payload["kernels"]

    def test_bench_subcommand_bad_filter_fails(self, capsys):
        rc = cli.main(["bench", "--filter", "nope-nothing", "--repeat", "1"])
        assert rc == 2
        assert "no benchmark kernel" in capsys.readouterr().err

    def test_bench_subcommand_rejects_zero_repeat(self, capsys):
        rc = cli.main(["bench", "--repeat", "0"])
        assert rc == 2
        assert "--repeat" in capsys.readouterr().err

    def test_bench_subcommand_rejects_path_label(self, capsys):
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1", "--json",
             "--label", "bad/label"]
        )
        assert rc == 2
        assert "label" in capsys.readouterr().err

    def test_bench_subcommand_rejects_missing_baseline(self, capsys):
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1",
             "--baseline", "/definitely/not/there.json"]
        )
        assert rc == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_fail_above_requires_baseline(self, capsys):
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1",
             "--fail-above", "50"]
        )
        assert rc == 2
        assert "--fail-above requires --baseline" in capsys.readouterr().err

    @staticmethod
    def _baseline_artifact(tmp_path, ns_per_op):
        payload = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "kernels": {
                "vector.arith": {
                    "description": "",
                    "ns_per_op": ns_per_op,
                    "ops_per_s": 1e9 / ns_per_op,
                }
            },
        }
        path = tmp_path / "BENCH_gate.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_fail_above_passes_against_slow_baseline(self, tmp_path, capsys):
        baseline = self._baseline_artifact(tmp_path, ns_per_op=1e12)
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1",
             "--baseline", baseline, "--fail-above", "50"]
        )
        assert rc == 0
        assert "OK: no kernel regressed" in capsys.readouterr().out

    def test_fail_above_trips_against_fast_baseline(self, tmp_path, capsys):
        baseline = self._baseline_artifact(tmp_path, ns_per_op=1e-3)
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1",
             "--baseline", baseline, "--fail-above", "50"]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "FAIL: 1 kernel(s) regressed" in err
        assert "vector.arith" in err

    def test_fail_above_rejects_negative_threshold(self, tmp_path, capsys):
        baseline = self._baseline_artifact(tmp_path, ns_per_op=1e12)
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1",
             "--baseline", baseline, "--fail-above", "-5"]
        )
        assert rc == 2
        assert "non-negative" in capsys.readouterr().err

    def test_write_artifact_rejects_path_label(self, tmp_path):
        with pytest.raises(ValueError, match="file-name fragment"):
            write_bench_artifact({}, "../escape", directory=str(tmp_path))

    def test_bench_baseline_auto_resolves_newest_pr(
        self, tmp_path, capsys, monkeypatch
    ):
        slow = self._baseline_artifact(tmp_path, ns_per_op=1e12)
        (tmp_path / "BENCH_pr7.json").write_text(
            (tmp_path / "BENCH_gate.json").read_text()
        )
        assert slow  # _baseline_artifact wrote BENCH_gate.json (ignored)
        monkeypatch.chdir(tmp_path)
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1",
             "--baseline", "auto", "--fail-above", "50"]
        )
        assert rc == 0
        assert "OK: no kernel regressed" in capsys.readouterr().out

    def test_bench_baseline_auto_fails_without_artifact(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1",
             "--baseline", "auto"]
        )
        assert rc == 2
        assert "no committed BENCH_pr" in capsys.readouterr().err

    def test_bench_mem_flag_emits_peak_column(self, tmp_path, capsys):
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1", "--mem",
             "--json", "--label", "memtest", "--out", str(tmp_path)]
        )
        assert rc == 0
        assert "peak KiB" in capsys.readouterr().out
        payload = json.loads((tmp_path / "BENCH_memtest.json").read_text())
        assert payload["kernels"]["vector.arith"]["peak_kb"] > 0


class TestProfileCli:
    def test_profile_kernel_renders_stats(self, capsys):
        rc = cli.main(["profile", "--kernel", "vector.arith", "--top", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vector.arith" in out
        assert "cumtime" in out  # pstats table rendered

    def test_profile_kernel_json_payload(self, capsys):
        rc = cli.main(
            ["profile", "--kernel", "vector.arith", "--top", "5", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 2
        assert payload["kind"] == "profile"
        assert payload["target"] == "kernel:vector.arith"
        assert payload["sort"] == "tottime"
        assert payload["total_time_s"] > 0
        # Single-process kernels carry an empty per-shard section (v2).
        assert payload["shards"] == []
        assert 1 <= len(payload["rows"]) <= 5
        row = payload["rows"][0]
        assert set(row) == {
            "file",
            "line",
            "function",
            "ncalls",
            "primitive_calls",
            "tottime_s",
            "cumtime_s",
        }
        # tottime sort: rows arrive hottest-first.
        times = [r["tottime_s"] for r in payload["rows"]]
        assert times == sorted(times, reverse=True)

    def test_profile_payload_carries_shard_self_time(self):
        import cProfile

        from repro.profiling import profile_payload, read_profile_payload

        profiler = cProfile.Profile()
        profiler.enable()
        sum(range(100))
        profiler.disable()
        payload = profile_payload(
            profiler, "kernel:fake", shard_self_time_s=[0.5, 0.25]
        )
        assert payload["schema_version"] == 2
        assert payload["shards"] == [
            {"shard": 0, "self_time_s": 0.5},
            {"shard": 1, "self_time_s": 0.25},
        ]
        # v1 artifacts normalise; unknown versions are refused.
        assert read_profile_payload(payload) == payload
        with pytest.raises(ValueError):
            read_profile_payload({"schema_version": 3, "kind": "profile"})

    def test_profile_rejects_bad_limit(self, capsys):
        rc = cli.main(["profile", "--kernel", "vector.arith", "--top", "0"])
        assert rc == 2
        assert "limit" in capsys.readouterr().err

    def test_profile_rejects_kernel_and_experiment_together(self, capsys):
        rc = cli.main(["profile", "fig4", "--kernel", "vector.arith"])
        assert rc == 2
        assert "exactly one target" in capsys.readouterr().err

    def test_profile_rejects_neither_target(self, capsys):
        rc = cli.main(["profile"])
        assert rc == 2

    def test_profile_unknown_kernel_fails(self, capsys):
        rc = cli.main(["profile", "--kernel", "nope.missing"])
        assert rc == 2
        assert "nope.missing" in capsys.readouterr().err
