"""Unit tests for repro.sim.network, repro.sim.node and repro.sim.metrics."""

import math

import pytest

from repro.query import MachineSpec
from repro.query.model import Query
from repro.sim.engine import Simulator
from repro.sim.metrics import (
    MetricsCollector,
    QueryOutcome,
    normalised_response_times,
)
from repro.sim.network import LatencyModel, Network
from repro.sim.node import SimulatedNode


class TestLatencyModel:
    def test_sample_within_bounds(self):
        import random

        model = LatencyModel(base_ms=1.0, jitter_ms=2.0)
        rng = random.Random(0)
        for __ in range(100):
            value = model.sample(rng)
            assert 1.0 <= value <= 3.0

    def test_zero_jitter_is_deterministic(self):
        import random

        model = LatencyModel(base_ms=0.7, jitter_ms=0.0)
        assert model.sample(random.Random(0)) == 0.7

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(base_ms=-1.0)


class TestNetwork:
    def test_send_counts_and_delivers(self):
        sim = Simulator()
        net = Network(sim, LatencyModel(base_ms=2.0, jitter_ms=0.0))
        delivered = []
        net.send(lambda: delivered.append(sim.now))
        sim.run()
        assert delivered == [2.0]
        assert net.messages_sent == 1

    def test_round_trip_counts_two_messages_per_peer(self):
        sim = Simulator()
        net = Network(sim, LatencyModel(base_ms=1.0, jitter_ms=0.0))
        delay = net.round_trip_ms(3)
        assert net.messages_sent == 6
        assert delay == 2.0

    def test_round_trip_zero_peers(self):
        net = Network(Simulator())
        assert net.round_trip_ms(0) == 0.0
        assert net.messages_sent == 0


def make_node(sim, costs=(100.0, 200.0), slots=1):
    return SimulatedNode(
        node_id=0,
        spec=MachineSpec(),
        relations=frozenset({0}),
        class_costs_ms=list(costs),
        simulator=sim,
        exec_slots=slots,
    )


def make_query(qid=0, class_index=0):
    return Query(qid=qid, class_index=class_index, origin_node=0, arrival_ms=0.0)


class TestSimulatedNode:
    def test_fifo_execution_times(self):
        sim = Simulator()
        node = make_node(sim)
        r1 = node.enqueue(make_query(0, 0))
        r2 = node.enqueue(make_query(1, 0))
        assert (r1.start_ms, r1.finish_ms) == (0.0, 100.0)
        assert (r2.start_ms, r2.finish_ms) == (100.0, 200.0)

    def test_completion_callback_fires_at_finish(self):
        sim = Simulator()
        node = make_node(sim)
        finished = []
        node.enqueue(make_query(), lambda q, r: finished.append(sim.now))
        sim.run()
        assert finished == [100.0]

    def test_cannot_evaluate_infinite_cost_class(self):
        sim = Simulator()
        node = make_node(sim, costs=(100.0, math.inf))
        assert node.can_evaluate(0)
        assert not node.can_evaluate(1)
        with pytest.raises(ValueError):
            node.execution_time_ms(1)

    def test_current_load_decreases_with_time(self):
        sim = Simulator()
        node = make_node(sim)
        node.enqueue(make_query())
        assert node.current_load_ms() == 100.0
        sim.schedule(40.0, lambda: None)
        sim.run()
        assert node.current_load_ms() == pytest.approx(60.0)

    def test_estimated_completion(self):
        sim = Simulator()
        node = make_node(sim)
        node.enqueue(make_query())
        assert node.estimated_completion_ms(0) == 200.0

    def test_queued_queries_count(self):
        sim = Simulator()
        node = make_node(sim)
        node.enqueue(make_query(0))
        node.enqueue(make_query(1))
        assert node.queued_queries() == 2
        sim.schedule(150.0, lambda: None)
        sim.run()
        assert node.queued_queries() == 1

    def test_two_slots_run_in_parallel(self):
        sim = Simulator()
        node = make_node(sim, slots=2)
        r1 = node.enqueue(make_query(0))
        r2 = node.enqueue(make_query(1))
        assert r1.finish_ms == 100.0
        assert r2.finish_ms == 100.0

    def test_supply_set_uses_period_capacity(self):
        sim = Simulator()
        node = make_node(sim)
        supply_set = node.make_supply_set(500.0)
        assert supply_set.capacity_ms == 500.0

    def test_executed_by_class(self):
        sim = Simulator()
        node = make_node(sim)
        node.enqueue(make_query(0, 0))
        node.enqueue(make_query(1, 0))
        node.enqueue(make_query(2, 1))
        assert node.executed_by_class == {0: 2, 1: 1}

    def test_total_busy_accumulates(self):
        sim = Simulator()
        node = make_node(sim)
        node.enqueue(make_query(0, 0))
        node.enqueue(make_query(1, 1))
        assert node.total_busy_ms == 300.0

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            make_node(Simulator(), slots=0)


def outcome(qid=0, arrival=0.0, assigned=1.0, start=2.0, finish=10.0, cls=0):
    return QueryOutcome(
        qid=qid,
        class_index=cls,
        origin_node=0,
        arrival_ms=arrival,
        assigned_ms=assigned,
        node_id=0,
        start_ms=start,
        finish_ms=finish,
    )


class TestMetrics:
    def test_response_and_assign_times(self):
        o = outcome()
        assert o.response_ms == 10.0
        assert o.assign_ms == 1.0
        assert o.execution_ms == 8.0

    def test_mean_response(self):
        m = MetricsCollector()
        m.record(outcome(finish=10.0))
        m.record(outcome(finish=20.0))
        assert m.mean_response_ms() == 15.0

    def test_empty_collector_returns_nan(self):
        assert math.isnan(MetricsCollector().mean_response_ms())

    def test_drop_counting(self):
        m = MetricsCollector()
        m.record_drop()
        m.record_drop()
        assert m.dropped == 2

    def test_percentile(self):
        m = MetricsCollector()
        for finish in (10.0, 20.0, 30.0, 40.0):
            m.record(outcome(finish=finish))
        assert m.percentile_response_ms(0.0) == 10.0
        assert m.percentile_response_ms(1.0) == 40.0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            MetricsCollector().percentile_response_ms(1.5)

    def test_executed_per_period(self):
        m = MetricsCollector()
        m.record(outcome(finish=100.0))
        m.record(outcome(finish=600.0))
        m.record(outcome(finish=600.0, cls=1))
        counts = m.executed_per_period(500.0, 1000.0)
        assert counts == [1, 2]
        only_class0 = m.executed_per_period(500.0, 1000.0, class_index=0)
        assert only_class0 == [1, 1]

    def test_mean_response_by_class(self):
        m = MetricsCollector()
        m.record(outcome(finish=10.0, cls=0))
        m.record(outcome(finish=30.0, cls=1))
        by_class = m.mean_response_by_class()
        assert by_class == {0: 10.0, 1: 30.0}

    def test_last_finish(self):
        m = MetricsCollector()
        m.record(outcome(finish=42.0))
        assert m.last_finish_ms() == 42.0

    def test_normalised_response_times(self):
        base = MetricsCollector()
        base.record(outcome(finish=10.0))
        other = MetricsCollector()
        other.record(outcome(finish=20.0))
        normalised = normalised_response_times(base, {"x": other, "base": base})
        assert normalised == {"x": 2.0, "base": 1.0}

    def test_normalised_rejects_empty_baseline(self):
        with pytest.raises(ValueError):
            normalised_response_times(MetricsCollector(), {})
