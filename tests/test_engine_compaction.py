"""Property test: heap compaction under interleaved schedule/cancel/step.

The simulator lazily discards cancelled heap entries and compacts the
heap once stale entries outnumber live ones.  This drives the engine
through arbitrary interleavings of scheduling, cancellation (including
mass cancellation, which is what triggers compaction) and stepping, and
checks the bookkeeping invariants the rest of the simulator relies on:

* ``pending_events`` always equals the number of scheduled-but-unfired,
  uncancelled events;
* ``heap_size`` never undercounts them (stale entries may pad it);
* cancelled events never fire, and live events fire exactly once, in
  (time, seq) FIFO order;
* a final unbounded ``run()`` drains everything.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator

# An operation stream: each element either schedules a new event with the
# given delay, cancels a previously scheduled one (index modulo the number
# of handles so far), or steps the simulator once.
ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("schedule"),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("step"), st.just(0)),
    ),
    min_size=1,
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(ops)
def test_compaction_keeps_bookkeeping_and_fire_order_consistent(stream):
    sim = Simulator()
    handles = []  # handles[tag] — the list index doubles as the event tag
    fired = []

    for op, value in stream:
        if op == "schedule":
            handles.append(sim.schedule(value, fired.append, len(handles)))
        elif op == "cancel" and handles:
            handles[value % len(handles)].cancel()
        elif op == "step":
            sim.step()
        # Invariants hold after *every* operation, not just at the end.
        live = sum(1 for h in handles if not h.cancelled and not h.fired)
        assert sim.pending_events == live
        assert sim.heap_size >= live

    sim.run()
    assert sim.pending_events == 0
    assert sim.heap_size == 0

    # Cancelled events never fire; live ones fire exactly once.
    cancelled_tags = {tag for tag, h in enumerate(handles) if h.cancelled}
    expected_tags = [tag for tag, h in enumerate(handles) if not h.cancelled]
    assert set(fired).isdisjoint(cancelled_tags)
    assert sorted(fired) == sorted(expected_tags)

    # Fire order respects (time, seq): among fired events, times are
    # non-decreasing, and equal times fire in scheduling (seq) order.
    keys = [(handles[tag].time, handles[tag].seq) for tag in fired]
    assert keys == sorted(keys)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=65, max_value=400),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
def test_mass_cancellation_compacts_and_survivors_fire(count, survivor_delay):
    # The compaction trigger needs > max(64, live) stale entries: cancel
    # a large block at once and check the physical heap shrinks while the
    # survivors still fire in order.
    sim = Simulator()
    doomed = [sim.schedule(float(i % 50), lambda: None) for i in range(count)]
    fired = []
    sim.schedule(survivor_delay, fired.append, "a")
    sim.schedule(survivor_delay, fired.append, "b")
    for handle in doomed:
        handle.cancel()
    assert sim.pending_events == 2
    assert sim.heap_size < count + 2  # compaction dropped stale entries
    sim.run()
    assert fired == ["a", "b"]
    assert sim.heap_size == 0


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        min_size=1,
        max_size=40,
    ),
    st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        max_size=10,
    ),
)
def test_schedule_stream_matches_sequential_schedule_at(
    stream_times, other_times
):
    # A stream reserves its whole seq range at registration, so firing
    # order (including FIFO ties against individually scheduled events
    # registered before and after it) must be indistinguishable from
    # having called schedule_at once per entry.
    stream_times = sorted(stream_times)
    half = len(other_times) // 2

    def run(use_stream):
        sim = Simulator()
        fired = []
        for j, t in enumerate(other_times[:half]):
            sim.schedule_at(t, fired.append, ("pre", j))
        if use_stream:
            sim.schedule_stream(
                [
                    (t, fired.append, (("stream", i),))
                    for i, t in enumerate(stream_times)
                ]
            )
        else:
            for i, t in enumerate(stream_times):
                sim.schedule_at(t, fired.append, ("stream", i))
        for j, t in enumerate(other_times[half:]):
            sim.schedule_at(t, fired.append, ("post", j))
        assert sim.pending_events == len(stream_times) + len(other_times)
        sim.run()
        assert sim.pending_events == 0
        return fired

    assert run(True) == run(False)


def test_schedule_stream_rejects_unsorted_and_past_entries():
    import pytest

    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule_stream(
            [(5.0, (lambda: None), ()), (4.0, (lambda: None), ())]
        )
    sim.schedule_at(10.0, lambda: None)
    sim.run()
    assert sim.now == 10.0
    with pytest.raises(ValueError):
        sim.schedule_stream([(5.0, (lambda: None), ())])


def test_compaction_stays_heap_local_under_large_pending_stream():
    # Regression for the adaptive threshold: a bulk-registered trace
    # keeps >=100k events *pending* while only the stream head occupies
    # a physical heap slot.  The old trigger compared stale entries to
    # the live-event count (`> max(64, live)`), which a 100k-event
    # stream pins unreachably high — cancelled one-off events would then
    # accumulate in the heap forever.  The heap-local rule (stale
    # outnumbering half the physical heap) must keep compacting.
    sim = Simulator()
    fired = [0]

    def bump():
        fired[0] += 1

    n = 100_000
    sim.schedule_stream([(float(i) * 0.01, bump, ()) for i in range(n)])
    assert sim.pending_events == n
    assert sim.heap_size == 1  # only the stream head is resident

    doomed = [sim.schedule(2_000.0, bump) for __ in range(500)]
    for handle in doomed:
        handle.cancel()
    assert sim.pending_events == n
    # Repeated compactions keep the heap near the live entry count; the
    # live-count threshold would have left all 500 stale slots in place.
    assert sim.heap_size <= 70

    sim.run()
    assert fired[0] == n
    assert sim.pending_events == 0
    assert sim.heap_size == 0
