"""Zipf-distributed inter-arrival times (paper Fig. 6 workload).

The heterogeneous-workload experiment draws each class's inter-arrival
*time* from a Zipf distribution with parameter ``a = 1``, capped at
30,000 ms, with the scale chosen so the mean inter-arrival time matches a
requested target (the paper sweeps 10 ms – 20,000 ms).  A Zipf-shaped gap
distribution makes arrivals bursty: most gaps are tiny, a few are huge.

``a = 1`` has no normalisable distribution on unbounded support, so the
paper's 30,000 ms cap is structural, not cosmetic: we sample from the
*truncated* Zipf ``P(X = x) ~ 1/x^a`` on ``{1..support}`` via an inverse
CDF lookup, then scale.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Iterator, List

from .arrival import ArrivalProcess

__all__ = [
    "TruncatedZipf",
    "ZipfArrivals",
]

#: Paper cap on the inter-arrival time, in milliseconds.
MAX_INTERARRIVAL_MS = 30_000.0


class TruncatedZipf:
    """Zipf(``a``) on ``{1, .., support}`` with inverse-CDF sampling."""

    def __init__(self, a: float = 1.0, support: int = 3000):
        if a <= 0:
            raise ValueError("zipf exponent must be positive")
        if support <= 0:
            raise ValueError("support must be positive")
        self.a = a
        self.support = support
        weights = [1.0 / (x ** a) for x in range(1, support + 1)]
        total = sum(weights)
        self._cdf: List[float] = list(
            itertools.accumulate(w / total for w in weights)
        )
        self._mean = (
            sum(x * w for x, w in zip(range(1, support + 1), weights)) / total
        )

    @property
    def mean(self) -> float:
        """Expected value of the truncated distribution."""
        return self._mean

    def sample(self, rng: random.Random) -> int:
        """One draw in ``{1..support}``.

        The index is clamped because the accumulated CDF's last entry can
        round to slightly below 1.0, which would otherwise let a draw land
        one past the support.
        """
        index = bisect.bisect_left(self._cdf, rng.random())
        return min(index, self.support - 1) + 1


class ZipfArrivals(ArrivalProcess):
    """Arrivals whose gaps are scaled truncated-Zipf draws.

    ``mean_interarrival_ms`` sets the target mean gap; every gap is
    additionally capped at ``max_interarrival_ms`` (paper: 30 s).
    """

    def __init__(
        self,
        mean_interarrival_ms: float,
        a: float = 1.0,
        support: int = 3000,
        max_interarrival_ms: float = MAX_INTERARRIVAL_MS,
    ):
        if mean_interarrival_ms <= 0:
            raise ValueError("mean inter-arrival time must be positive")
        if max_interarrival_ms <= 0:
            raise ValueError("max inter-arrival time must be positive")
        self._zipf = TruncatedZipf(a=a, support=support)
        self._scale = mean_interarrival_ms / self._zipf.mean
        self._cap = max_interarrival_ms

    def gap_ms(self, rng: random.Random) -> float:
        """One inter-arrival gap in milliseconds."""
        return min(self._cap, self._zipf.sample(rng) * self._scale)

    def times(self, horizon_ms: float, rng: random.Random) -> Iterator[float]:
        clock = self.gap_ms(rng)
        while clock < horizon_ms:
            yield clock
            clock += self.gap_ms(rng)
