"""Property-based tests on market-level invariants (economy, equity)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.equity import equitable_consumptions
from repro.core.preferences import ThroughputPreference
from repro.core.qant import QantParameters
from repro.core.supply import CapacitySupplySet
from repro.core.vectors import QueryVector, aggregate
from repro.core.welfare import QueryMarketEconomy


class TestEquitableFillingProperties:
    demands_strategy = st.lists(
        st.lists(st.integers(0, 8), min_size=2, max_size=2),
        min_size=1,
        max_size=5,
    )
    supply_strategy = st.lists(st.integers(0, 15), min_size=2, max_size=2)

    @given(supply_strategy, demands_strategy)
    @settings(max_examples=80)
    def test_no_supply_wasted_while_demand_unmet(self, supply, demands):
        supply_vec = QueryVector(supply)
        demand_vecs = [QueryVector(d) for d in demands]
        consumptions = equitable_consumptions(supply_vec, demand_vecs)
        consumed = aggregate(consumptions)
        for k in range(2):
            leftover = supply_vec[k] - consumed[k]
            unmet = sum(d[k] - c[k] for d, c in zip(demand_vecs, consumptions))
            # Either the class's supply is exhausted or nobody wants more.
            assert leftover < 1.0 or unmet == 0.0

    @given(supply_strategy, demands_strategy)
    @settings(max_examples=80)
    def test_consumption_bounded_by_demand_and_supply(self, supply, demands):
        supply_vec = QueryVector(supply)
        demand_vecs = [QueryVector(d) for d in demands]
        consumptions = equitable_consumptions(supply_vec, demand_vecs)
        for consumption, demand in zip(consumptions, demand_vecs):
            assert consumption.componentwise_le(demand)
        assert aggregate(consumptions).componentwise_le(supply_vec)

    @given(st.integers(0, 20), st.lists(st.integers(1, 10), min_size=2, max_size=5))
    @settings(max_examples=80)
    def test_single_class_max_min_gap_at_most_one(self, supply, wants):
        """With one class, totals of still-hungry nodes differ by <= 1."""
        supply_vec = QueryVector([supply])
        demand_vecs = [QueryVector([w]) for w in wants]
        consumptions = equitable_consumptions(supply_vec, demand_vecs)
        pref = ThroughputPreference()
        hungry = [
            pref.utility(c)
            for c, d in zip(consumptions, demand_vecs)
            if c.total() < d.total()
        ]
        if len(hungry) >= 2:
            assert max(hungry) - min(hungry) <= 1.0


class TestEconomyInvariants:
    @given(
        st.integers(1, 4),
        st.lists(st.integers(0, 4), min_size=2, max_size=2),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_consumed_never_exceeds_offered(self, periods, demand, seed):
        economy = QueryMarketEconomy(
            [
                CapacitySupplySet([100.0, 200.0], 500.0),
                CapacitySupplySet([200.0, 100.0], 500.0),
            ],
            parameters=QantParameters(
                supply_method="greedy", carry_over=False
            ),
            seed=seed,
        )
        demand_vec = QueryVector(demand)
        for __ in range(periods):
            record = economy.run_period(demand_vec)
            assert record.consumed.componentwise_le(record.demand)
            # Backlog + consumed accounts for every offered query.
            assert record.consumed.total() + record.backlog.total() == (
                record.demand.total()
            )

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_feasible_constant_demand_is_eventually_served(self, seed):
        economy = QueryMarketEconomy(
            [CapacitySupplySet([100.0, 100.0], 500.0)],
            parameters=QantParameters(
                supply_method="greedy", carry_over=False
            ),
            seed=seed,
        )
        demand = QueryVector([1, 1])  # trivially within one node's period
        served_totals = [
            economy.run_period(demand).consumed.total() for __ in range(10)
        ]
        # After warm-up the single node serves the full demand each period.
        assert served_totals[-1] >= 2.0
