"""Arrival processes: streams of query arrival times.

An :class:`ArrivalProcess` turns randomness into a non-decreasing sequence
of arrival times (milliseconds) over a finite horizon.  The paper's
experiments use three families:

* uniform inter-arrival (the real-deployment experiment, Fig. 7);
* sinusoid-modulated arrival *rates* (Figs. 3–5) — implemented in
  :mod:`repro.workload.sinusoid`;
* Zipf-distributed inter-arrival *times* (Fig. 6) — implemented in
  :mod:`repro.workload.zipf`.
"""

from __future__ import annotations

import abc
import random
from typing import Iterator, List

__all__ = [
    "ArrivalProcess",
    "UniformArrivals",
    "PoissonArrivals",
    "FixedArrivals",
]


class ArrivalProcess(abc.ABC):
    """Generates arrival times within ``[0, horizon_ms)``."""

    @abc.abstractmethod
    def times(self, horizon_ms: float, rng: random.Random) -> Iterator[float]:
        """Yield non-decreasing arrival times smaller than ``horizon_ms``."""

    def sample(self, horizon_ms: float, rng: random.Random) -> List[float]:
        """All arrival times as a list (convenience for trace builders)."""
        return list(self.times(horizon_ms, rng))


class UniformArrivals(ArrivalProcess):
    """Inter-arrival gaps uniform in ``[0, 2 * mean_ms]``.

    Matches the paper's real-deployment workload: "query interarrival time
    had a uniform distribution with an average of 300 ms".
    """

    def __init__(self, mean_ms: float):
        if mean_ms <= 0:
            raise ValueError("mean inter-arrival time must be positive")
        self._mean_ms = mean_ms

    def times(self, horizon_ms: float, rng: random.Random) -> Iterator[float]:
        clock = rng.uniform(0.0, 2.0 * self._mean_ms)
        while clock < horizon_ms:
            yield clock
            clock += rng.uniform(0.0, 2.0 * self._mean_ms)


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process with rate ``rate_per_ms``."""

    def __init__(self, rate_per_ms: float):
        if rate_per_ms <= 0:
            raise ValueError("arrival rate must be positive")
        self._rate = rate_per_ms

    def times(self, horizon_ms: float, rng: random.Random) -> Iterator[float]:
        clock = rng.expovariate(self._rate)
        while clock < horizon_ms:
            yield clock
            clock += rng.expovariate(self._rate)


class FixedArrivals(ArrivalProcess):
    """A predetermined list of arrival times (deterministic tests, replays)."""

    def __init__(self, times_ms: List[float]):
        ordered = sorted(times_ms)
        if any(t < 0 for t in ordered):
            raise ValueError("arrival times must be non-negative")
        self._times = ordered

    def times(self, horizon_ms: float, rng: random.Random) -> Iterator[float]:
        for t in self._times:
            if t < horizon_ms:
                yield t
