"""Unit tests for repro.core.welfare (FTWE checks, market economy)."""

import pytest

from repro.core.market import PriceVector
from repro.core.qant import QantParameters
from repro.core.supply import CapacitySupplySet, ExplicitSupplySet
from repro.core.vectors import QueryVector
from repro.core.welfare import (
    QueryMarketEconomy,
    ftwe_allocation,
    verify_ftwe,
)


def fig1_supply_sets(period_ms=500.0):
    """Enumerated supply sets of the paper's Figure 1 nodes."""
    sets = []
    for costs in ((400.0, 100.0), (450.0, 500.0)):
        vectors = []
        for n1 in range(3):
            for n2 in range(6):
                if n1 * costs[0] + n2 * costs[1] <= period_ms:
                    vectors.append(QueryVector((n1, n2)))
        sets.append(ExplicitSupplySet(vectors))
    return sets


class TestFtwe:
    def test_allocation_distributes_supply_to_demand(self):
        demands = [QueryVector([1, 6]), QueryVector([1, 0])]
        allocation = ftwe_allocation(
            demands, fig1_supply_sets(), PriceVector([1.0, 1.0])
        )
        assert allocation.respects_demand(demands)
        assert allocation.num_nodes == 2

    def test_verify_ftwe_holds_at_supporting_prices(self):
        # Prices making N1 sell q2 and N2 sell q1: q2 relatively valuable
        # at N1 (100ms each), q1 at N2.  Aggregate demand (1, 5) matches
        # the induced aggregate supply exactly.
        demands = [QueryVector([0, 5]), QueryVector([1, 0])]
        prices = PriceVector([1.0, 0.9])
        assert verify_ftwe(demands, fig1_supply_sets(), prices)

    def test_verify_ftwe_fails_when_market_does_not_clear(self):
        demands = [QueryVector([2, 6]), QueryVector([1, 0])]
        # Zero price on q1 -> nobody supplies q1 -> excess demand.
        prices = PriceVector([0.0, 1.0])
        assert not verify_ftwe(demands, fig1_supply_sets(), prices)


class TestEconomy:
    def make_economy(self, seed=0, **params):
        defaults = dict(supply_method="greedy", carry_over=False)
        defaults.update(params)
        return QueryMarketEconomy(
            [
                CapacitySupplySet([400.0, 100.0], 500.0),
                CapacitySupplySet([450.0, 500.0], 500.0),
            ],
            parameters=QantParameters(**defaults),
            seed=seed,
        )

    def test_single_period_consumes_feasible_demand(self):
        economy = self.make_economy()
        record = economy.run_period(QueryVector([0, 3]))
        assert record.consumed.total() >= 3

    def test_infeasible_demand_creates_backlog(self):
        economy = self.make_economy()
        economy.run_period(QueryVector([10, 10]))
        assert economy.backlog_size > 0

    def test_backlog_re_enters_demand(self):
        economy = self.make_economy()
        economy.run_period(QueryVector([10, 0]))
        backlog = economy.backlog_size
        record = economy.run_period(QueryVector([0, 0]))
        # The resubmitted queries appear in the period's offered demand.
        assert record.demand.total() == backlog

    def test_market_specialises_under_constant_load(self):
        economy = self.make_economy(seed=7)
        demand = QueryVector([1, 5])
        for __ in range(40):
            record = economy.run_period(demand)
        # Late periods serve the full per-period demand: the market found
        # the Figure 1 allocation (N1 -> q2, N2 -> q1).
        late = economy.history[-5:]
        assert any(r.consumed.total() >= demand.total() for r in late)

    def test_history_grows(self):
        economy = self.make_economy()
        economy.run([QueryVector([1, 1])] * 3)
        assert len(economy.history) == 3
        assert [r.period for r in economy.history] == [1, 2, 3]

    def test_rejects_fractional_demand(self):
        economy = self.make_economy()
        with pytest.raises(ValueError):
            economy.run_period(QueryVector([1.5, 0]))

    def test_rejects_wrong_demand_length(self):
        economy = self.make_economy()
        with pytest.raises(ValueError):
            economy.run_period(QueryVector([1]))

    def test_rejects_empty_economy(self):
        with pytest.raises(ValueError):
            QueryMarketEconomy([])

    def test_rejects_mixed_class_counts(self):
        with pytest.raises(ValueError):
            QueryMarketEconomy(
                [
                    CapacitySupplySet([1.0], 1.0),
                    CapacitySupplySet([1.0, 2.0], 1.0),
                ]
            )

    def test_steady_state_excess_shrinks(self):
        economy = self.make_economy(seed=3)
        # Clearly sub-capacity demand: 1 q2 per period.
        excess = economy.steady_state_excess(QueryVector([0, 1]), periods=20)
        assert excess[1] <= 1.0
