"""Analytical cost model for SJPS queries on heterogeneous nodes.

Each simulated RDBMS is described by a :class:`MachineSpec` drawn from the
paper's Table 3 ranges (CPU 1–3.5 GHz, sort/hash buffer 2–10 MB per query,
I/O 5–80 MB/s, hash join on 95 of 100 nodes).  The cost model prices a
query class on a given machine as:

* sequential scan of every base relation (I/O bound, plus a CPU term);
* a left-deep pipeline of joins, smallest relations first:

  - *hash join* when the node supports it — one pass when the build side
    fits the buffer, a grace/partitioned variant with one extra read+write
    of both inputs otherwise;
  - *merge-scan join* everywhere else — external sort of both inputs
    (passes grow logarithmically with size/buffer) followed by a merge;

* an optional final external sort for the ORDER BY.

Intermediate result sizes shrink by the class selectivity after each join.
Absolute times are calibrated by a global ``scale`` so that the average
best-node execution time matches the paper's ≈2,000 ms (Table 3); shapes —
who is faster on what — come from the per-machine parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..catalog import Catalog
from ..catalog.schema import BYTES_PER_ATTRIBUTE
from .model import QueryClass

__all__ = [
    "MachineSpec",
    "CostModel",
    "RelativeSpeedCostModel",
    "cost_matrix",
    "calibrated_cost_model",
]

#: CPU throughput: tuples processed per millisecond per GHz for simple
#: predicate evaluation / hashing.  One knob, calibrated, not measured.
TUPLES_PER_GHZ_MS = 400.0

#: Relative CPU weight of sort comparisons vs plain tuple processing.
SORT_CPU_FACTOR = 0.25

#: Floor on intermediate result size so repeated selectivities cannot make
#: later joins free.
MIN_INTERMEDIATE_MB = 0.05


@dataclass(frozen=True)
class MachineSpec:
    """Hardware description of one federation node (Table 3 ranges)."""

    cpu_ghz: float = 2.3
    buffer_mb: float = 6.0
    io_mbps: float = 42.5
    supports_hash_join: bool = True

    def __post_init__(self) -> None:
        if self.cpu_ghz <= 0:
            raise ValueError("CPU speed must be positive")
        if self.buffer_mb <= 0:
            raise ValueError("buffer size must be positive")
        if self.io_mbps <= 0:
            raise ValueError("I/O speed must be positive")


class CostModel:
    """Prices query classes on machines; see the module docstring."""

    def __init__(self, catalog: Catalog, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self._catalog = catalog
        self._scale = scale
        self._cache: Dict[Tuple[QueryClass, MachineSpec], float] = {}

    @property
    def scale(self) -> float:
        """Global calibration factor applied to every cost."""
        return self._scale

    def execution_time_ms(
        self, query_class: QueryClass, spec: MachineSpec
    ) -> float:
        """Estimated wall-clock execution time of one class instance."""
        key = (query_class, spec)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        time_ms = self._raw_time_ms(query_class, spec) * self._scale
        self._cache[key] = time_ms
        return time_ms

    def rescaled(self, scale: float) -> "CostModel":
        """A copy of this model with a different calibration factor."""
        return CostModel(self._catalog, scale=scale)

    # -- internals -------------------------------------------------------------

    def _raw_time_ms(self, query_class: QueryClass, spec: MachineSpec) -> float:
        sizes = sorted(
            self._catalog.get(rid).size_mb for rid in query_class.relation_ids
        )
        total = 0.0
        # Scan every base relation once.
        for size_mb in sizes:
            total += self._scan_ms(size_mb, spec)
        # Left-deep join pipeline, smallest relations first.
        current_mb = sizes[0]
        for size_mb in sizes[1:]:
            total += self._join_ms(current_mb, size_mb, spec)
            current_mb = max(
                MIN_INTERMEDIATE_MB,
                max(current_mb, size_mb) * query_class.selectivity,
            )
        if query_class.requires_sort:
            total += self._sort_ms(current_mb, spec)
        return total

    def _scan_ms(self, size_mb: float, spec: MachineSpec) -> float:
        io = size_mb / spec.io_mbps * 1000.0
        cpu = self._tuples(size_mb) / (spec.cpu_ghz * TUPLES_PER_GHZ_MS)
        return io + cpu

    def _join_ms(self, left_mb: float, right_mb: float, spec: MachineSpec) -> float:
        if spec.supports_hash_join:
            return self._hash_join_ms(left_mb, right_mb, spec)
        return self._merge_scan_ms(left_mb, right_mb, spec)

    def _hash_join_ms(self, left_mb: float, right_mb: float, spec: MachineSpec) -> float:
        build_mb = min(left_mb, right_mb)
        cpu = (self._tuples(left_mb) + self._tuples(right_mb)) / (
            spec.cpu_ghz * TUPLES_PER_GHZ_MS
        )
        if build_mb <= spec.buffer_mb:
            return cpu
        # Grace hash join: partition both inputs to disk and re-read them.
        spill_io = 2.0 * (left_mb + right_mb) / spec.io_mbps * 1000.0
        return cpu + spill_io

    def _merge_scan_ms(self, left_mb: float, right_mb: float, spec: MachineSpec) -> float:
        total = self._sort_ms(left_mb, spec) + self._sort_ms(right_mb, spec)
        merge_cpu = (self._tuples(left_mb) + self._tuples(right_mb)) / (
            spec.cpu_ghz * TUPLES_PER_GHZ_MS
        )
        return total + merge_cpu

    def _sort_ms(self, size_mb: float, spec: MachineSpec) -> float:
        tuples = self._tuples(size_mb)
        compare_cpu = (
            tuples
            * math.log2(max(2.0, tuples))
            * SORT_CPU_FACTOR
            / (spec.cpu_ghz * TUPLES_PER_GHZ_MS)
        )
        if size_mb <= spec.buffer_mb:
            return compare_cpu
        # External merge sort: each extra pass rewrites and rereads the run.
        passes = math.ceil(math.log2(size_mb / spec.buffer_mb))
        spill_io = 2.0 * passes * size_mb / spec.io_mbps * 1000.0
        return compare_cpu + spill_io

    @staticmethod
    @lru_cache(maxsize=4096)
    def _tuples(size_mb: float) -> float:
        return size_mb * 1_000_000 / (10 * BYTES_PER_ATTRIBUTE)


class RelativeSpeedCostModel:
    """Costs from fixed per-class base times scaled by machine speed.

    The paper's first simulation set pins execution times directly ("Q1
    and Q2, with an average execution time of 1000 ms and 500 ms") rather
    than deriving them from relations; this model reproduces that: class
    *k* takes ``base_ms[k] / speed(spec)`` where ``speed`` averages the
    machine's CPU and I/O ratios against the Table 3 reference node
    (2.3 GHz, 42.5 MB/s).  Duck-type compatible with :class:`CostModel`
    where only ``execution_time_ms`` is needed.
    """

    #: Reference machine the base costs are quoted against.
    REFERENCE = MachineSpec()

    def __init__(self, base_ms: Mapping[int, float]):
        if not base_ms:
            raise ValueError("need at least one per-class base cost")
        for cost in base_ms.values():
            if cost <= 0:
                raise ValueError("base costs must be positive")
        self._base_ms = dict(base_ms)

    @classmethod
    def speed_factor(cls, spec: MachineSpec) -> float:
        """Relative speed of ``spec`` vs the reference node (1.0 = equal)."""
        return (
            0.5 * spec.cpu_ghz / cls.REFERENCE.cpu_ghz
            + 0.5 * spec.io_mbps / cls.REFERENCE.io_mbps
        )

    def execution_time_ms(self, query_class: QueryClass, spec: MachineSpec) -> float:
        """Execution time of one ``query_class`` instance on ``spec``."""
        base = self._base_ms.get(query_class.index)
        if base is None:
            raise KeyError(
                "no base cost registered for class %d" % query_class.index
            )
        return base / self.speed_factor(spec)


def cost_matrix(
    classes: Sequence[QueryClass],
    specs: Sequence[MachineSpec],
    model: CostModel,
    eligibility: Optional[Sequence[Sequence[bool]]] = None,
) -> List[List[float]]:
    """Cost table ``[node][class] -> ms`` with ``inf`` for ineligible pairs.

    ``eligibility[i][k]`` marks whether node *i* can evaluate class *k*
    (holds all its relations); ``None`` means every node is eligible.
    """
    matrix: List[List[float]] = []
    for i, spec in enumerate(specs):
        row = []
        for k, query_class in enumerate(classes):
            eligible = eligibility is None or eligibility[i][k]
            row.append(
                model.execution_time_ms(query_class, spec)
                if eligible
                else math.inf
            )
        matrix.append(row)
    return matrix


def calibrated_cost_model(
    catalog: Catalog,
    classes: Sequence[QueryClass],
    specs: Sequence[MachineSpec],
    target_best_ms: float = 2000.0,
    eligible_nodes: Optional[Sequence[Sequence[int]]] = None,
) -> CostModel:
    """A cost model scaled so the mean best-node time hits ``target_best_ms``.

    This mirrors the paper's Table 3 calibration: "average best execution
    time of queries: 2000 ms" on the fastest eligible machine.
    ``eligible_nodes[k]`` optionally restricts class *k*'s minimum to the
    nodes actually holding its relations; omitted, every node counts.
    """
    base = CostModel(catalog)
    best_times = []
    for position, query_class in enumerate(classes):
        if eligible_nodes is None:
            eligible = range(len(specs))
        else:
            eligible = eligible_nodes[position]
            if not eligible:
                raise ValueError(
                    "class %d has no eligible node" % query_class.index
                )
        best = min(
            base.execution_time_ms(query_class, specs[i]) for i in eligible
        )
        best_times.append(best)
    mean_best = sum(best_times) / len(best_times)
    if mean_best <= 0:
        raise ValueError("degenerate cost model: zero mean best time")
    return base.rescaled(target_best_ms / mean_best)
