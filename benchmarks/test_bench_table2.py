"""Bench E10 — regenerate Table 2 (qualitative mechanism comparison).

Static columns come from the allocator classes; the performance column is
measured by the Figure 4 run.
"""

from repro.experiments.fig4 import run_fig4
from repro.experiments.table2 import run_table2


def test_bench_table2(benchmark, save_result, bench_nodes):
    fig4 = run_fig4(num_nodes=bench_nodes, horizon_ms=60_000.0, seed=0)
    result = benchmark.pedantic(
        run_table2, kwargs=dict(fig4=fig4), rounds=1, iterations=1
    )
    save_result("table2", result.render())
    qant = result.row("qa-nt")
    assert qant.respects_autonomy and qant.distributed
    assert not qant.conflicts_with_dqo
    assert qant.performance == "very good"
    greedy = result.row("greedy")
    assert not greedy.respects_autonomy
    for name in ("random", "round-robin"):
        assert result.row(name).performance == "poor"
    markov = result.row("markov")
    assert markov.workload_type == "static"
