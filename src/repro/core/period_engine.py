"""Federation-wide batched QA-NT period-boundary engine.

At paper scale the dominant cost after the PR 3 bidding-path work is the
period boundary itself: every ``period_ms`` the allocator used to walk all
N agents in Python, closing the old period (steps 12–14 price decay),
rebinding the free-capacity budget, and re-solving eq. 4 — K-element
loops times N nodes times thousands of periods.  The boundary has no
cross-agent coupling (prices are private, each agent owns its supply set)
and draws no randomness, so it batches cleanly:

* **vectorised across nodes** — the engine holds the N×K price, cost and
  credit matrices plus the free-capacity vector in numpy and computes the
  unsold-supply decay (``p_k -= s_ik λ p_k``) and the proportional /
  greedy / greedy-fractional / fractional supply solves as array ops;
* **incremental** — a row whose ``(price_epoch, free_capacity)`` pair is
  unchanged since its last solve reuses the cached optimal vector (the
  batched extension of the PR 2 ``(agent_token, price_epoch)`` memo with
  capacity folded into the key), and the decay only rewrites rows it
  actually changed;
* **quiescence fast-forward** — a node that received no request and sold
  nothing evolves by deterministic closed-loop decay toward its price
  floor.  Once every class is at the floor or inert (zero optimal supply
  with no pending carry-over credit) and every node is idle, the boundary
  is a fixed point: further untouched ticks are counted in O(1) and only
  materialised (``flush``) when someone next observes or perturbs the
  market.

Bit-identity contract: the engine reproduces the scalar
:meth:`~repro.core.qant.QantPricingAgent.begin_period` /
:meth:`~repro.core.qant.QantPricingAgent.end_period` arithmetic to the
last ulp — same operations, same order, same clamps — so the golden
traces pinned in ``tests/golden/`` do not move.  The one numerically
treacherous spot is the proportional solver's ``(density/top) **
sharpness``: CPython routes ``float.__pow__`` through libm's ``pow``
while numpy rewrites an exponent of 2.0 into a multiply, and the two
differ in the last ulp for roughly 0.1% of inputs.  The weights therefore
go through a scalar Python pow loop (over only the rows being solved)
while everything around them is vectorised.

The agents' own Python lists stay authoritative for the *within*-period
hot paths (the allocator's inlined fan-out holds live references via
``bid_state``); the engine gathers them into its matrices at a boundary
only when the period saw any interaction, and scatters results back with
identity-preserving slice assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from .qant import QantPricingAgent
from .supply import CapacitySupplySet
from .vectors import QueryVector

__all__ = [
    "BATCHED_METHODS",
    "PeriodEngineStats",
    "QantPeriodEngine",
]

#: Supply-solver methods the batched path replicates bit-for-bit.  The
#: ``exact`` DP (and any non-capacity supply set) stays on the scalar
#: per-agent fallback the allocator keeps for non-conforming agents.
BATCHED_METHODS = frozenset(
    {"proportional", "greedy", "greedy-fractional", "fractional"}
)

#: Mirrors the default ``sharpness`` of
#: :meth:`repro.core.supply.CapacitySupplySet._solve_proportional`.
_PROP_SHARPNESS = 2.0


@dataclass
class PeriodEngineStats:
    """Counters of the engine's incremental machinery (observability).

    ``solved_rows``/``reused_rows`` partition every (tick, agent) cell the
    engine materialised: a reused row served its plan from the
    ``(price_epoch, free_capacity)`` cache without re-solving eq. 4.
    ``deferred_ticks`` counts boundaries fast-forwarded in O(1) at the
    quiescent fixed point; ``replayed_ticks`` counts how many of those
    were later materialised by a :meth:`QantPeriodEngine.flush`.
    """

    ticks: int = 0
    deferred_ticks: int = 0
    replayed_ticks: int = 0
    solved_rows: int = 0
    reused_rows: int = 0


class QantPeriodEngine:
    """Batched period boundaries for a fleet of plain QA-NT agents.

    The engine owns the cross-period numeric state (prices, carry-over
    credit, cached optimal plans) as matrices and drives all N agents'
    ``end_period`` → capacity rebind → ``begin_period`` sequence per
    :meth:`advance` call.  Construct it *between* periods (at bind time)
    over agents that all share one :class:`~repro.core.qant.
    QantParameters`; agents that do not :meth:`accepts` must stay on the
    caller's scalar path.
    """

    def __init__(
        self,
        agents: Sequence[QantPricingAgent],
        allowances: Sequence[float],
        can_defer: bool = True,
    ):
        agents = list(agents)
        if not agents:
            raise ValueError("the period engine needs at least one agent")
        if len(allowances) != len(agents):
            raise ValueError("one backlog allowance per agent is required")
        params = agents[0].parameters
        num_classes = agents[0].num_classes
        for agent in agents:
            if not self.accepts(agent):
                raise ValueError(
                    "agent %r is not batchable (needs a plain "
                    "QantPricingAgent over a CapacitySupplySet with a "
                    "batched solver method)" % (agent,)
                )
            if agent.parameters != params:
                raise ValueError("all agents must share one QantParameters")
            if agent.num_classes != num_classes:
                raise ValueError("all agents must price the same K classes")
            if agent.in_period:
                raise ValueError("build the engine between periods")
        self._agents: List[QantPricingAgent] = agents
        self._num_classes = num_classes
        self._method = params.supply_method
        self._carry = params.carry_over
        self._lam = params.adjustment
        self._floor = params.price_floor
        self._can_defer = bool(can_defer)
        n = len(agents)
        self._allowances = np.array([float(a) for a in allowances])
        self._costs = np.array(
            [agent.supply_set.cost_ms for agent in agents]
        )
        self._valid_cost = np.isfinite(self._costs)
        # Mirrors of the agents' live state.  Between boundaries the
        # agents' lists are authoritative (the allocator mutates them
        # in-place); the matrices are re-gathered at the next boundary
        # iff the period saw any interaction.
        self._prices = np.array([agent._price_values for agent in agents])
        self._epochs = np.fromiter(
            (agent._price_epoch for agent in agents), dtype=np.int64, count=n
        )
        self._credit = np.array([agent._credit for agent in agents])
        self._planned = np.zeros((n, num_classes))
        # The (price_epoch, free_capacity) plan cache: row i's cached
        # optimal vector is valid while both coordinates are unchanged.
        self._prev_epochs = np.full(n, -1, dtype=np.int64)
        self._prev_capacity = np.full(n, -1.0)
        self._optimal = np.zeros((n, num_classes))
        self._started = False
        self._eligible = False
        self._deferred = 0
        self._zeros_int = [0] * num_classes
        self.stats = PeriodEngineStats()

    @staticmethod
    def accepts(agent: object) -> bool:
        """Whether ``agent`` can be managed by the batched path.

        Exactly a plain :class:`QantPricingAgent` (no subclass — a
        subclass may override the period methods the engine bypasses)
        over a :class:`CapacitySupplySet` with one of the
        :data:`BATCHED_METHODS` solvers.
        """
        return (
            type(agent) is QantPricingAgent
            and isinstance(agent.supply_set, CapacitySupplySet)
            and agent.parameters.supply_method in BATCHED_METHODS
        )

    # -- driving ------------------------------------------------------------

    @property
    def deferred_ticks_pending(self) -> int:
        """Boundaries fast-forwarded but not yet materialised."""
        return self._deferred

    def advance(
        self, interacted: bool, free_capacity: Callable[[], Sequence[float]]
    ) -> None:
        """Drive one period boundary for every managed agent.

        ``interacted`` must be True iff anything touched the market since
        the previous boundary (an assignment ran, a query completed) —
        it gates both the state re-gather and the quiescence fast path.
        ``free_capacity`` is only called when the boundary actually
        materialises, so quiescent ticks skip the per-node load probes
        entirely.
        """
        self.stats.ticks += 1
        if self._eligible and not interacted:
            # Quiescent fixed point: closed-loop decay is a no-op, every
            # plan is cached, no node can change load.  O(1).
            self._deferred += 1
            self.stats.deferred_ticks += 1
            return
        if self._deferred:
            self._replay()
        self._tick(
            np.asarray(free_capacity(), dtype=float), gather=interacted
        )

    def flush(self) -> None:
        """Materialise any fast-forwarded boundaries.

        Callers must flush before reading or perturbing agent state
        (assignments, tracers, end of run); after the flush every agent
        holds exactly the state the scalar per-tick loop would have
        produced.
        """
        if self._deferred:
            self._replay()

    # -- one full boundary ---------------------------------------------------

    def _tick(self, capacities: np.ndarray, gather: bool) -> None:
        agents = self._agents
        n = len(agents)
        prices = self._prices
        if gather or not self._started:
            # The period saw assignments: prices may have risen and
            # supply been consumed through the agents' live lists.  Every
            # price writer (scalar raises, the market-tick dispatcher's
            # sync, our own decay) bumps the agent's price epoch exactly
            # when a value changed, so rows whose epoch matches our
            # mirror are already bit-identical and skip the re-gather.
            new_epochs = np.fromiter(
                (agent._price_epoch for agent in agents),
                dtype=np.int64,
                count=n,
            )
            if self._started:
                stale = np.nonzero(new_epochs != self._epochs)[0].tolist()
            else:
                stale = range(n)
            for i in stale:
                prices[i] = agents[i]._price_values
            self._epochs = new_epochs
            remaining = np.array([agent._remaining for agent in agents])
        else:
            # Untouched period: nothing was sold, so the unsold leftover
            # is the full planned vector and prices match our matrix.
            remaining = self._planned

        # Steps 12-14, batched: every class with unsold supply decays,
        # ``p_k *= max(0, 1 - leftover*lambda)`` clamped at the floor —
        # the same expression (and clamp order) as the scalar
        # ``_lower_price``, applied elementwise.
        if self._started:
            factor = 1.0 - remaining * self._lam
            np.maximum(factor, 0.0, out=factor)
            decayed = prices * factor
            np.maximum(decayed, self._floor, out=decayed)
            new_prices = np.where(remaining > 0.0, decayed, prices)
            changed = new_prices != prices
            row_counts = changed.sum(axis=1)
            changed_rows = np.nonzero(row_counts)[0]
            if changed_rows.size:
                new_lists = new_prices[changed_rows].tolist()
                for slot, i in enumerate(changed_rows.tolist()):
                    agent = agents[i]
                    # One epoch bump per changed class, exactly as the
                    # scalar loop; the lazy caches are dropped wholesale
                    # (recomputing max over only-lowered prices yields
                    # the same value the scalar path keeps or recomputes).
                    agent._price_epoch += int(row_counts[i])
                    agent._prices_cache = None
                    agent._max_price = None
                    agent._price_values[:] = new_lists[slot]
                self._epochs[changed_rows] += row_counts[changed_rows]
            prices = self._prices = new_prices

        # Free-capacity rebinds: same `with_capacity` sharing as the
        # scalar path, done only for rows whose budget actually moved
        # (`with_capacity` returns self on an equal budget anyway).  The
        # in-period guard of `rebind_supply_set` is deliberately skipped —
        # the engine *is* the period machinery.
        capacity_changed = capacities != self._prev_capacity
        for i in np.nonzero(capacity_changed)[0].tolist():
            agent = agents[i]
            agent._supply_set = agent._supply_set.with_capacity(
                float(capacities[i])
            )

        # Solve eq. 4 only where the (price_epoch, capacity) key moved.
        need = (self._epochs != self._prev_epochs) | capacity_changed
        n_need = int(np.count_nonzero(need))
        if n_need:
            rows = np.nonzero(need)[0]
            self._optimal[rows] = self._solve_rows(rows, capacities)
            self._prev_epochs[need] = self._epochs[need]
            self._prev_capacity[need] = capacities[need]
        self.stats.solved_rows += n_need
        self.stats.reused_rows += n - n_need

        # Carry-over credit arithmetic (or plain rounding), batched.  The
        # `+ 0.0` normalises a potential IEEE -0.0 from trunc/floor back
        # to the +0.0 the scalar int()/math.floor() conversions produce.
        if self._carry:
            credit = self._credit
            credit += self._optimal
            planned = np.trunc(credit + 1e-9) + 0.0
            credit -= planned
        else:
            planned = np.floor(self._optimal + 1e-9) + 0.0
        self._planned = planned
        self._install()
        self._started = True

        # Fixed-point detection for the deferral fast path: with every
        # node idle (free capacity pinned at its allowance) and every
        # class either at the price floor (decay is a no-op regardless of
        # leftover) or inert (zero optimal supply and, with carry-over,
        # no credit within rounding reach of one whole query), future
        # untouched boundaries cannot change prices, epochs, capacities
        # or plans — only cycle the carry-over credit, which `_replay`
        # reproduces exactly.
        if self._can_defer and bool(
            (capacities == self._allowances).all()
        ):
            at_floor = prices <= self._floor
            if self._carry:
                inert = (self._optimal == 0.0) & (self._credit + 1e-9 < 1.0)
            else:
                inert = planned == 0.0
            self._eligible = bool((at_floor | inert).all())
        else:
            self._eligible = False

    def _replay(self) -> None:
        """Materialise the deferred boundaries in one batch.

        At the fixed point each skipped boundary is decay-no-op +
        cache-hit solve; only the carry-over credit cycles, so replaying
        n ticks is n vectorised credit updates (none at all without
        carry-over, where the planned vector is pinned).
        """
        count = self._deferred
        self._deferred = 0
        self.stats.replayed_ticks += count
        if not self._carry:
            return
        credit = self._credit
        optimal = self._optimal
        planned = self._planned
        for __ in range(count):
            credit += optimal
            planned = np.trunc(credit + 1e-9) + 0.0
            credit -= planned
        self._planned = planned
        self._install()

    def _install(self) -> None:
        """Scatter the boundary's results back into the agents.

        Slice assignment everywhere: the allocator's compiled bidder
        tuples hold the very list objects (`bid_state`), so their
        identity must survive — the same contract `begin_period` keeps.
        """
        planned_lists = self._planned.tolist()
        credit_lists = self._credit.tolist() if self._carry else None
        zeros_int = self._zeros_int
        from_trusted = QueryVector._from_trusted_tuple
        for i, agent in enumerate(self._agents):
            row = planned_lists[i]
            agent._planned = from_trusted(tuple(row))
            agent._remaining[:] = row
            agent._accepted[:] = zeros_int
            agent._refused[:] = zeros_int
            agent._in_period = True
            agent._enforce_locked_at = None
            if credit_lists is not None:
                agent._credit[:] = credit_lists[i]

    # -- batched eq. 4 -------------------------------------------------------

    def _solve_rows(
        self, rows: np.ndarray, capacities: np.ndarray
    ) -> np.ndarray:
        """Solve eq. 4 for the row subset, bit-equal to the scalar solvers.

        Shared front half of every method: densities ``p_k / c_k`` for
        evaluable classes with positive prices (others pinned to -inf),
        then a stable per-row sort by (-density, k) — `np.argsort` on the
        negated matrix with ``kind="stable"`` reproduces the scalar
        tuple-sort ordering including ties.
        """
        prices = self._prices[rows]
        costs = self._costs[rows]
        cap = capacities[rows]
        valid = self._valid_cost[rows] & (prices > 0.0)
        density = np.where(valid, prices / costs, -np.inf)
        order = np.argsort(-density, axis=1, kind="stable")
        density_s = np.take_along_axis(density, order, axis=1)
        costs_s = np.take_along_axis(costs, order, axis=1)
        method = self._method
        if method == "proportional":
            counts_s = self._solve_proportional_sorted(density_s, cap, costs_s)
        elif method == "fractional":
            counts_s = np.zeros_like(density_s)
            has_any = density_s[:, 0] != -np.inf
            counts_s[:, 0] = np.where(has_any, cap / costs_s[:, 0], 0.0)
        else:  # greedy / greedy-fractional
            counts_s = self._solve_greedy_sorted(
                density_s, cap, costs_s, method == "greedy-fractional"
            )
        counts = np.zeros_like(counts_s)
        np.put_along_axis(counts, order, counts_s, axis=1)
        return counts

    def _solve_proportional_sorted(
        self, density_s: np.ndarray, cap: np.ndarray, costs_s: np.ndarray
    ) -> np.ndarray:
        """Batched `_solve_proportional` over density-sorted rows."""
        num_classes = density_s.shape[1]
        valid = density_s != -np.inf
        top = density_s[:, 0]
        # Scalar semantics: no evaluable class, or a best density that
        # underflowed to zero, supplies nothing.
        ok = top > 0.0
        safe_top = np.where(ok, top, 1.0)
        ratio = density_s / safe_top[:, None]
        weights = np.zeros_like(ratio)
        mask = valid & ok[:, None]
        flat = ratio[mask]
        if flat.size:
            # Scalar pow on purpose: see the module docstring — numpy's
            # `** 2.0` is not bit-equal to CPython's.
            sharpness = _PROP_SHARPNESS
            weights[mask] = [v ** sharpness for v in flat.tolist()]
        # `total += weight` in density order; trailing invalid columns
        # contribute an exact +0.0 so the fold matches the scalar sum.
        total = weights[:, 0].copy()
        for j in range(1, num_classes):
            total += weights[:, j]
        nonzero = total > 0.0
        share = (cap[:, None] * weights) / np.where(nonzero, total, 1.0)[
            :, None
        ]
        counts = share / costs_s
        counts[~nonzero] = 0.0
        counts[~mask] = 0.0
        return counts

    def _solve_greedy_sorted(
        self,
        density_s: np.ndarray,
        cap: np.ndarray,
        costs_s: np.ndarray,
        fractional_tail: bool,
    ) -> np.ndarray:
        """Batched `_solve_greedy` over density-sorted rows.

        The column loop replicates the scalar fill order exactly: class
        columns are visited best-density first and each row's remaining
        budget updates sequentially, including the `remaining < cost`
        skip guard (masked here) that keeps a near-fitting class from
        rounding up into the budget.
        """
        num_classes = density_s.shape[1]
        valid = density_s != -np.inf
        remaining = cap.copy()
        counts = np.zeros_like(density_s)
        for j in range(num_classes):
            cost_j = costs_s[:, j]
            active = valid[:, j] & (remaining >= cost_j)
            if not active.any():
                continue
            fit = np.floor(remaining / cost_j + 1e-9)
            fit = np.where(active, fit, 0.0)
            counts[:, j] = fit
            # `fit * cost` with the cost masked to 0 on inactive rows:
            # avoids 0*inf while leaving active rows' arithmetic exact.
            remaining = remaining - fit * np.where(active, cost_j, 0.0)
        if fractional_tail:
            tail = valid[:, 0] & (remaining > 0.0)
            if tail.any():
                counts[:, 0] += np.where(
                    tail, remaining / costs_s[:, 0], 0.0
                )
        return counts
