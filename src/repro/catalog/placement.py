"""Placement of relations (and their mirrors) onto federation nodes.

Autonomy means nodes hold arbitrary, overlapping fragments of the common
schema.  Placement answers the one question allocation mechanisms ask:
*which nodes can evaluate this query locally*, i.e. which nodes hold every
relation a query class touches.

Relations are placed in *bundles*: groups of relations that always travel
together, each bundle mirrored onto several nodes of one *node group*.
Bundled placement is what makes multi-join queries locally evaluable at
all — with independently-scattered mirrors the probability that one node
holds all 25 relations of a 24-join query is effectively zero, yet the
paper's workload has such queries and its nodes hold ~50 relations each.
Bundles reproduce both Table 3 statistics (≈5 mirrors per relation, ≈50
relations per node) and the paper's eligibility structure ("Q2 could be
evaluated by only half of the available nodes").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Set

__all__ = [
    "Placement",
]


class Placement:
    """Bidirectional mapping between nodes and the relations they hold."""

    def __init__(self, holdings: Mapping[int, Iterable[int]]):
        """``holdings`` maps node id -> iterable of relation ids held."""
        self._by_node: Dict[int, FrozenSet[int]] = {
            node: frozenset(rids) for node, rids in holdings.items()
        }
        if not self._by_node:
            raise ValueError("placement must cover at least one node")
        self._by_relation: Dict[int, Set[int]] = {}
        for node, rids in self._by_node.items():
            for rid in rids:
                self._by_relation.setdefault(rid, set()).add(node)

    @property
    def node_ids(self) -> List[int]:
        """All node ids, ascending."""
        return sorted(self._by_node)

    @property
    def num_nodes(self) -> int:
        """Number of nodes covered by the placement."""
        return len(self._by_node)

    def relations_of(self, node_id: int) -> FrozenSet[int]:
        """Relation ids locally held by ``node_id``."""
        return self._by_node[node_id]

    def mirrors_of(self, rid: int) -> FrozenSet[int]:
        """Nodes holding a copy of relation ``rid`` (empty if unplaced)."""
        return frozenset(self._by_relation.get(rid, ()))

    def holders(self, rids: Sequence[int]) -> FrozenSet[int]:
        """Nodes holding *every* relation in ``rids``.

        These are the candidate servers for a query touching exactly
        ``rids``; an empty result means no node can evaluate the query
        without data shipping (such query classes are rejected by the
        workload generator).
        """
        if not rids:
            return frozenset(self._by_node)
        holder_sets = [self._by_relation.get(rid, set()) for rid in rids]
        result = set(holder_sets[0])
        for holder_set in holder_sets[1:]:
            result &= holder_set
            if not result:
                break
        return frozenset(result)

    def average_mirrors(self) -> float:
        """Mean number of copies per placed relation (paper: ≈5)."""
        if not self._by_relation:
            return 0.0
        return sum(len(s) for s in self._by_relation.values()) / len(
            self._by_relation
        )

    def average_relations_per_node(self) -> float:
        """Mean number of relations held per node (paper: ≈50)."""
        return sum(len(s) for s in self._by_node.values()) / len(self._by_node)
