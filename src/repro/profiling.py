"""Profiling entry point: cProfile any registered experiment or kernel.

``python -m repro profile <scenario> --scale paper`` runs one scenario
under :mod:`cProfile` and prints the hottest functions, which is how the
paper-scale optimisation targets of this repo were found (the QA-NT
request-for-bid fan-out, the network latency sampling, the per-period
supply solves).  The profile is collected around exactly the code path
``python -m repro run`` executes for a single seed, serially — worker
processes would escape the profiler.

``python -m repro profile --kernel fed.fig5a_paper_short`` profiles one
registered *bench* kernel instead — the same seeded fixture ``python -m
repro bench`` times, so a hotspot hunt on a kernel that regressed is one
command with no scenario bookkeeping around it.  The kernel's ``setup()``
runs outside the profiled region; one warm-up call absorbs first-call
effects (lazy imports, cache fills) so the profile reflects the
steady-state the bench harness measures.

Profiler note: cProfile's tracing typically inflates this simulator's
wall-clock ~3x and overstates Python-level call overhead relative to
C-level work (RNG draws, heap operations); treat the ranking as the
signal, not the absolute numbers, and confirm wins with
``python -m repro bench``.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Optional

__all__ = [
    "SORT_KEYS",
    "profile_experiment",
    "profile_kernel",
]

#: pstats sort keys exposed on the CLI.
SORT_KEYS = ("tottime", "cumtime", "ncalls")


def _check_render_args(sort: str, limit: int) -> None:
    if sort not in SORT_KEYS:
        raise ValueError(
            "unknown sort key %r (expected one of %s)"
            % (sort, ", ".join(SORT_KEYS))
        )
    if limit < 1:
        raise ValueError("limit must be >= 1")


def _render(
    profiler: cProfile.Profile,
    sort: str,
    limit: int,
    stream: Optional[io.TextIOBase],
) -> str:
    """Render a collected profile as a pstats report string."""
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(limit)
    report = buffer.getvalue()
    if stream is not None:
        stream.write(report)
    return report


def profile_experiment(
    name: str,
    scale: str = "small",
    seed: int = 0,
    sort: str = "tottime",
    limit: int = 25,
    stream: Optional[io.TextIOBase] = None,
) -> str:
    """Run one registered experiment under cProfile; return the report.

    ``sort`` is a :mod:`pstats` sort key (see :data:`SORT_KEYS`);
    ``limit`` bounds the number of rows.  The rendered report is returned
    and, when ``stream`` is given, also written there incrementally.
    """
    from .experiments.runner import run_single, run_sweep
    from .experiments.spec import REGISTRY

    _check_render_args(sort, limit)
    spec = REGISTRY.get(name)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        if spec.sweepable:
            run_sweep(spec, scale=scale, seeds=(seed,))
        else:
            run_single(spec, scale, seed)
    finally:
        profiler.disable()
    return _render(profiler, sort, limit, stream)


def profile_kernel(
    name: str,
    sort: str = "tottime",
    limit: int = 25,
    stream: Optional[io.TextIOBase] = None,
) -> str:
    """Run one registered bench kernel under cProfile; return the report.

    The kernel's seeded ``setup()`` and one warm-up call stay outside the
    profiled region, mirroring how the bench harness times it.  Raises
    ``KeyError`` for an unknown kernel name.
    """
    from .bench.kernels import KERNELS

    _check_render_args(sort, limit)
    kernel = KERNELS.get(name)
    if kernel is None:
        raise KeyError(
            "unknown bench kernel %r (see 'python -m repro bench')" % (name,)
        )
    fn = kernel.setup()
    fn()  # warm-up: lazy imports and cache fills stay out of the profile
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    return _render(profiler, sort, limit, stream)
