"""Profiling entry point: cProfile any registered experiment or kernel.

``python -m repro profile <scenario> --scale paper`` runs one scenario
under :mod:`cProfile` and prints the hottest functions, which is how the
paper-scale optimisation targets of this repo were found (the QA-NT
request-for-bid fan-out, the network latency sampling, the per-period
supply solves).  The profile is collected around exactly the code path
``python -m repro run`` executes for a single seed, serially — worker
processes would escape the profiler.

``python -m repro profile --kernel fed.fig5a_paper_short`` profiles one
registered *bench* kernel instead — the same seeded fixture ``python -m
repro bench`` times, so a hotspot hunt on a kernel that regressed is one
command with no scenario bookkeeping around it.  The kernel's ``setup()``
runs outside the profiled region; one warm-up call absorbs first-call
effects (lazy imports, cache fills) so the profile reflects the
steady-state the bench harness measures.

Profiler note: cProfile's tracing typically inflates this simulator's
wall-clock ~3x and overstates Python-level call overhead relative to
C-level work (RNG draws, heap operations); treat the ranking as the
signal, not the absolute numbers, and confirm wins with
``python -m repro bench``.
"""

from __future__ import annotations

import cProfile
import io
import platform
import pstats
from typing import Optional

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "SORT_KEYS",
    "collect_experiment",
    "collect_kernel",
    "profile_experiment",
    "profile_kernel",
    "profile_payload",
]

#: pstats sort keys exposed on the CLI.
SORT_KEYS = ("tottime", "cumtime", "ncalls")

#: Version stamp of every ``repro profile --json`` payload (the
#: ``bench_payload`` convention: bump on incompatible row-shape changes).
PROFILE_SCHEMA_VERSION = 1


def _check_render_args(sort: str, limit: int) -> None:
    if sort not in SORT_KEYS:
        raise ValueError(
            "unknown sort key %r (expected one of %s)"
            % (sort, ", ".join(SORT_KEYS))
        )
    if limit < 1:
        raise ValueError("limit must be >= 1")


def _render(
    profiler: cProfile.Profile,
    sort: str,
    limit: int,
    stream: Optional[io.TextIOBase],
) -> str:
    """Render a collected profile as a pstats report string."""
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(limit)
    report = buffer.getvalue()
    if stream is not None:
        stream.write(report)
    return report


def collect_experiment(
    name: str, scale: str = "small", seed: int = 0
) -> cProfile.Profile:
    """Run one registered experiment under cProfile; return the profiler."""
    from .experiments.runner import run_single, run_sweep
    from .experiments.spec import REGISTRY

    spec = REGISTRY.get(name)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        if spec.sweepable:
            run_sweep(spec, scale=scale, seeds=(seed,))
        else:
            run_single(spec, scale, seed)
    finally:
        profiler.disable()
    return profiler


def collect_kernel(name: str) -> cProfile.Profile:
    """Run one registered bench kernel under cProfile; return the profiler.

    The kernel's seeded ``setup()`` and one warm-up call stay outside the
    profiled region, mirroring how the bench harness times it.  Raises
    ``KeyError`` for an unknown kernel name.
    """
    from .bench.kernels import KERNELS

    kernel = KERNELS.get(name)
    if kernel is None:
        raise KeyError(
            "unknown bench kernel %r (see 'python -m repro bench')" % (name,)
        )
    fn = kernel.setup()
    fn()  # warm-up: lazy imports and cache fills stay out of the profile
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    return profiler


def profile_experiment(
    name: str,
    scale: str = "small",
    seed: int = 0,
    sort: str = "tottime",
    limit: int = 25,
    stream: Optional[io.TextIOBase] = None,
) -> str:
    """Run one registered experiment under cProfile; return the report.

    ``sort`` is a :mod:`pstats` sort key (see :data:`SORT_KEYS`);
    ``limit`` bounds the number of rows.  The rendered report is returned
    and, when ``stream`` is given, also written there incrementally.
    """
    _check_render_args(sort, limit)
    return _render(collect_experiment(name, scale, seed), sort, limit, stream)


def profile_kernel(
    name: str,
    sort: str = "tottime",
    limit: int = 25,
    stream: Optional[io.TextIOBase] = None,
) -> str:
    """Run one registered bench kernel under cProfile; return the report.

    See :func:`collect_kernel` for what is and is not inside the profiled
    region.
    """
    _check_render_args(sort, limit)
    return _render(collect_kernel(name), sort, limit, stream)


def profile_payload(
    profiler: cProfile.Profile,
    target: str,
    sort: str = "tottime",
    limit: int = 25,
) -> dict:
    """Machine-readable hotspot rows for ``repro profile --json``.

    The ``bench_payload`` convention applied to profiles: a versioned
    envelope whose ``rows`` are the top ``limit`` functions under the
    chosen ``sort`` key, each a flat record scripts can aggregate without
    parsing pstats text — shard-imbalance hunts diff these across shard
    counts.  ``total_time_s`` is the profiler's own (inflated ~3x, see
    the module docs) account of the traced run; row fractions are
    meaningful, absolutes are not.
    """
    _check_render_args(sort, limit)
    stats = pstats.Stats(profiler)
    stats.sort_stats(sort)
    rows = []
    for func in stats.fcn_list[:limit]:
        primitive_calls, ncalls, tottime, cumtime, __ = stats.stats[func]
        filename, line, function = func
        rows.append(
            {
                "file": filename,
                "line": line,
                "function": function,
                "ncalls": ncalls,
                "primitive_calls": primitive_calls,
                "tottime_s": tottime,
                "cumtime_s": cumtime,
            }
        )
    return {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "kind": "profile",
        "target": target,
        "sort": sort,
        "limit": limit,
        "total_time_s": stats.total_tt,
        "python_version": platform.python_version(),
        "rows": rows,
    }
