"""QA-NT: the decentralised non-tatonnement pricing agent (Section 3.3).

One :class:`QantPricingAgent` runs inside every *server* node.  Per time
period ``tau`` it follows the paper's pseudo-code:

1. solve eq. 4 at the current private prices, obtaining the period's
   optimal supply vector ``s_i``;
2. while the period lasts, *immediately* offer to evaluate a requested
   query of class *k* iff ``s_ik > 0`` (no fairness negotiation) and
   decrement ``s_ik`` when the offer is accepted;
3. when a request arrives for a class with no remaining supply, refuse and
   raise that class's price: ``p_k += lambda * p_k``;
4. at the period's end, lower the price of every class with unsold supply:
   ``p_k -= s_ik * lambda * p_k``.

Prices are strictly private — they are never exchanged between nodes — so
each node may even use its own query classification (paper Section 3.3).
Trading failures are the *only* price signals, which is what makes the
process non-tatonnement: trade happens continuously at disequilibrium
prices rather than waiting for an umpire to clear the market.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .market import PriceVector
from .supply import SupplySet, solve_supply
from .vectors import QueryVector

#: Process-wide agent identifiers, combined with the per-agent price epoch
#: into the cache tokens handed to the supply solvers — two agents sharing
#: a supply set can therefore never collide in its memo.
_AGENT_TOKENS = itertools.count(1)

__all__ = [
    "QantParameters",
    "QantPeriodStats",
    "QantPricingAgent",
]

#: Prices are clamped to this floor so a class can always recover: a price
#: that reached exactly zero could never be raised again by the
#: multiplicative update.
DEFAULT_PRICE_FLOOR = 1e-6

#: Symmetric cap guarding against runaway prices during long overloads.
DEFAULT_PRICE_CAP = 1e9


@dataclass(frozen=True)
class QantParameters:
    """Tunables of the QA-NT price dynamics.

    ``adjustment`` is the paper's ``lambda``: the relative step applied on
    every trading failure.  The paper observes larger values react faster
    but estimate the equilibrium less accurately (ablation A1).
    """

    adjustment: float = 0.1
    #: How a seller splits its capacity across classes at given prices.
    #: ``"proportional"`` (default) responds smoothly to prices, which
    #: stabilises the market (see
    #: :meth:`repro.core.supply.CapacitySupplySet._solve_proportional`);
    #: ``"greedy"``/``"fractional"``/``"exact"`` give the corner solution
    #: of the pure linear seller problem and are kept for ablations.
    supply_method: str = "proportional"
    #: Accumulate fractional supply across periods.  When the supply
    #: budget is shorter than a query's execution time, the per-period
    #: equilibrium supply is a small real number (the paper's Section 5.1
    #: rounding discussion); carrying the fraction forward lets a node
    #: offer one such query every few periods instead of never.
    carry_over: bool = True
    price_floor: float = DEFAULT_PRICE_FLOOR
    price_cap: float = DEFAULT_PRICE_CAP

    def __post_init__(self) -> None:
        if self.adjustment <= 0:
            raise ValueError("lambda (adjustment) must be positive")
        if self.price_floor <= 0:
            raise ValueError("price floor must be positive")
        if self.price_cap <= self.price_floor:
            raise ValueError("price cap must exceed the price floor")


@dataclass
class QantPeriodStats:
    """Bookkeeping for one elapsed period of one agent (for tests/metrics)."""

    planned_supply: QueryVector
    accepted: List[int]
    refused: List[int]

    @property
    def total_accepted(self) -> int:
        """Queries this node agreed to evaluate during the period."""
        return sum(self.accepted)

    @property
    def total_refused(self) -> int:
        """Requests turned away (each one raised a price)."""
        return sum(self.refused)


class QantPricingAgent:
    """The per-node QA-NT agent: private prices + period supply budget.

    The agent is deliberately framework-agnostic: the discrete-event
    simulator (:mod:`repro.sim`) and the threaded SQLite federation
    (:mod:`repro.dbms`) both drive it through the same four calls —
    :meth:`begin_period`, :meth:`would_offer`, :meth:`accept`,
    :meth:`end_period`.
    """

    def __init__(
        self,
        supply_set: SupplySet,
        parameters: Optional[QantParameters] = None,
        initial_prices: Optional[PriceVector] = None,
    ):
        self._supply_set = supply_set
        self._params = parameters or QantParameters()
        num_classes = supply_set.num_classes
        initial = initial_prices or PriceVector.uniform(num_classes)
        if initial.num_classes != num_classes:
            raise ValueError("initial prices cover the wrong number of classes")
        # Price state lives in a mutable list so the per-refusal updates
        # are in-place; the immutable PriceVector is materialised lazily
        # when `.prices` is read.  `_price_epoch` counts actual changes and
        # keys the supply solvers' memo (see CapacitySupplySet).
        self._price_values: List[float] = list(initial.values)
        self._prices_cache: Optional[PriceVector] = initial
        self._price_epoch = 0
        self._max_price = max(self._price_values)
        # The multiplicative raise step, precomputed once: the per-refusal
        # fast path (`quote`) multiplies by it directly.
        self._raise_factor = 1.0 + self._params.adjustment
        self._token_base = next(_AGENT_TOKENS)
        self._num_classes = num_classes
        # These per-period state lists are mutated strictly in place and
        # never rebound (see `begin_period`): the federation allocator's
        # inlined fan-out loop caches direct references to them via
        # `bid_state` and relies on their identity staying stable for the
        # agent's whole lifetime.
        self._remaining: List[float] = [0.0] * num_classes
        self._credit: List[float] = [0.0] * num_classes
        self._planned = QueryVector.zeros(num_classes)
        self._accepted = [0] * num_classes
        self._refused = [0] * num_classes
        self._in_period = False
        # Per-period latch: within a period prices only rise, so once
        # `max_price` has been observed at/above an activation threshold
        # the node enforces its supply vector for the rest of the period
        # (for that threshold or any smaller one).  Holds the crossed
        # threshold value, or None.  Purely an optimisation — answers are
        # unchanged.
        self._enforce_locked_at: Optional[float] = None

    # -- read-only state ----------------------------------------------------

    @property
    def num_classes(self) -> int:
        """Number of query classes this agent prices."""
        return self._num_classes

    @property
    def parameters(self) -> QantParameters:
        """The agent's QA-NT tunables (immutable, often shared).

        The batched period engine (:mod:`repro.core.period_engine`)
        requires every agent it manages to share one parameter set; this
        accessor is how it checks.
        """
        return self._params

    @property
    def prices(self) -> PriceVector:
        """The node's *private* price vector (never shared on the wire)."""
        cached = self._prices_cache
        if cached is None:
            cached = PriceVector._from_trusted_tuple(tuple(self._price_values))
            self._prices_cache = cached
        return cached

    @property
    def max_price(self) -> float:
        """The largest current class price (the overload signal).

        Maintained incrementally so per-request threshold checks (the
        Section 5.1 activation rule) do not rescan all K prices.
        """
        value = self._max_price
        if value is None:
            value = max(self._price_values)
            self._max_price = value
        return value

    @property
    def price_epoch(self) -> int:
        """Counter of actual price changes (solver-cache invalidation key)."""
        return self._price_epoch

    @property
    def supply_set(self) -> SupplySet:
        """The node's supply set ``S_i``."""
        return self._supply_set

    @property
    def remaining_supply(self) -> Tuple[float, ...]:
        """Unsold portion of the period's planned supply vector."""
        return tuple(self._remaining)

    @property
    def planned_supply(self) -> QueryVector:
        """The supply vector chosen at :meth:`begin_period` (eq. 4)."""
        return self._planned

    @property
    def in_period(self) -> bool:
        """True between :meth:`begin_period` and :meth:`end_period`."""
        return self._in_period

    def rebind_supply_set(self, supply_set: SupplySet) -> None:
        """Replace the agent's supply set (prices are kept).

        Supply sets change between periods when a node's free capacity
        changes — e.g. outstanding queued work reduces what it can sell
        next period.  Only allowed between periods.
        """
        if self._in_period:
            raise RuntimeError("cannot swap the supply set mid-period")
        if supply_set.num_classes != self.num_classes:
            raise ValueError("new supply set covers a different class count")
        self._supply_set = supply_set

    # -- the QA-NT pseudo-code ------------------------------------------------

    def begin_period(self) -> QueryVector:
        """Step 2: solve eq. 4 at current prices; reset the period budget.

        The optimal supply is generally fractional when query execution
        times exceed the period length.  With ``carry_over`` enabled
        (default), the fractional parts accumulate as per-class credit and
        convert into whole offered queries once they reach 1 — otherwise
        they are simply floored away (the paper's rounding error, worth
        ablating).  Returns the planned (integer) supply vector.
        """
        optimal = solve_supply(
            self._supply_set,
            self._price_values,
            method=self._params.supply_method,
            cache_token=(self._token_base, self._price_epoch),
        )
        if self._params.carry_over:
            credit = self._credit
            planned_counts = []
            for k, amount in enumerate(optimal):
                credit[k] += amount
                whole = float(int(credit[k] + 1e-9))
                credit[k] -= whole
                planned_counts.append(whole)
            self._planned = QueryVector._from_trusted_tuple(
                tuple(planned_counts)
            )
        else:
            self._planned = optimal.rounded()
        # In-place resets: the list objects must keep their identity (the
        # allocator fast path holds references, see `bid_state`).
        self._remaining[:] = self._planned.components
        self._accepted[:] = [0] * self._num_classes
        self._refused[:] = [0] * self._num_classes
        self._in_period = True
        self._enforce_locked_at = None
        return self._planned

    def would_offer(self, class_index: int) -> bool:
        """Steps 4–10: react to a client's request for a class-*k* query.

        Returns True when the node offers to evaluate the query
        (``s_ik > 0``).  When it refuses, the class price is raised
        immediately (step 9) — a refusal is a trading failure and therefore
        a price signal.
        """
        if not 0 <= class_index < self._num_classes:
            self._check_class(class_index)
        return self.quote(class_index)

    def quote(
        self, class_index: int, activation_threshold: Optional[float] = None
    ) -> bool:
        """One node-side answer to a request-for-bid, in a single call.

        This is the RFB fan-out fast path: it fuses :meth:`would_offer`
        with the Section 5.1 activation rule the federation allocator
        otherwise applies separately.  Returns True when the node's reply
        to the client is an *offer* — either its supply vector covers the
        class, or (after the refusal raised the class price, as every
        trading failure must) its prices sit below
        ``activation_threshold`` so the vector is not enforced.  With the
        default ``activation_threshold=None`` the supply vector is always
        enforced and this is exactly :meth:`would_offer`.

        The price update is inlined rather than delegated to
        :meth:`_raise_price`: this runs ``nodes x queries`` times per
        simulation, which dominates paper-scale wall-clock.
        """
        # Guards trimmed to one attribute test: this is the innermost
        # loop of the allocation path.
        if not self._in_period:
            self._require_period()
        if self._remaining[class_index] >= 1.0:
            return True
        # Steps 8-9: refuse and raise the class price (same arithmetic and
        # clamp order as `_raise_price`, so traces stay byte-identical).
        self._refused[class_index] += 1
        values = self._price_values
        old = values[class_index]
        new = old * self._raise_factor
        params = self._params
        if new < params.price_floor:
            new = params.price_floor
        elif new > params.price_cap:
            new = params.price_cap
        if new != old:
            values[class_index] = new
            self._price_epoch += 1
            self._prices_cache = None
            if self._max_price is not None and new > self._max_price:
                self._max_price = new
        if activation_threshold is None:
            return False
        # Within a period prices only rise, so once the threshold is
        # crossed it stays crossed: the latch answers without re-reading
        # max_price (valid for this threshold or any smaller one).
        locked_at = self._enforce_locked_at
        if locked_at is not None and activation_threshold <= locked_at:
            return False
        max_price = self._max_price
        if max_price is None:
            max_price = max(values)
            self._max_price = max_price
        if max_price < activation_threshold:
            return True
        self._enforce_locked_at = activation_threshold
        return False

    def bid_state(self) -> Tuple[List[float], List[float], List[int]]:
        """The agent's mutable per-period cells, for inlined fan-out loops.

        Returns ``(remaining, price_values, refused)`` — the *live* list
        objects, guaranteed never to be rebound for the agent's lifetime
        (``begin_period`` resets them in place).  The federation
        allocator's request-for-bid loop holds these references and
        mirrors :meth:`quote` without a Python call frame per node; any
        mutation it performs must follow exactly the update sequence
        documented there.
        """
        return self._remaining, self._price_values, self._refused

    def supply_left(self, class_index: int) -> float:
        """Remaining unsold supply of one class (no tuple materialised).

        Equivalent to ``remaining_supply[class_index]`` without building
        the full tuple — the acceptance path reads exactly one component.
        """
        return self._remaining[class_index]

    def accept(self, class_index: int) -> None:
        """Step 6: a previously made offer was accepted; consume supply."""
        if not self._in_period:
            self._require_period()
        if not 0 <= class_index < self._num_classes:
            self._check_class(class_index)
        if self._remaining[class_index] < 1.0:
            raise RuntimeError(
                "node accepted a class-%d query without remaining supply"
                % class_index
            )
        self._remaining[class_index] -= 1.0
        self._accepted[class_index] += 1

    def end_period(self) -> QantPeriodStats:
        """Steps 12–14: unsold supply lowers prices; close the period."""
        self._require_period()
        for k, leftover in enumerate(self._remaining):
            if leftover > 0:
                self._lower_price(k, leftover)
        self._in_period = False
        return QantPeriodStats(
            planned_supply=self._planned,
            accepted=list(self._accepted),
            refused=list(self._refused),
        )

    def run_period(self, requests: Sequence[int]) -> QantPeriodStats:
        """Convenience driver: one whole period over a request stream.

        ``requests`` is the ordered sequence of class indices asked of this
        node during the period; every offer is assumed accepted (the
        paper's servers offer immediately and clients in a single-server
        negotiation always accept).  Mainly for tests and the synchronous
        market runner.
        """
        self.begin_period()
        would_offer = self.would_offer
        accept = self.accept
        for class_index in requests:
            if would_offer(class_index):
                accept(class_index)
        return self.end_period()

    # -- price updates --------------------------------------------------------

    def _raise_price(self, class_index: int) -> None:
        values = self._price_values
        old = values[class_index]
        new = old * (1.0 + self._params.adjustment)
        if new < self._params.price_floor:
            new = self._params.price_floor
        if new > self._params.price_cap:
            new = self._params.price_cap
        if new != old:
            values[class_index] = new
            self._price_epoch += 1
            self._prices_cache = None
            # A raise can only grow the maximum.
            if self._max_price is not None and new > self._max_price:
                self._max_price = new

    def _lower_price(self, class_index: int, leftover: float) -> None:
        # p_k -= s_ik * lambda * p_k, clamped so the price stays positive
        # even when s_ik * lambda >= 1 (large unsold surpluses).
        factor = max(0.0, 1.0 - leftover * self._params.adjustment)
        values = self._price_values
        old = values[class_index]
        new = old * factor
        if new < self._params.price_floor:
            new = self._params.price_floor
        if new != old:
            values[class_index] = new
            self._price_epoch += 1
            self._prices_cache = None
            # Lowering the current maximum invalidates it (recomputed
            # lazily on the next `max_price` read).
            if old == self._max_price:
                self._max_price = None

    # -- guards ----------------------------------------------------------------

    def _require_period(self) -> None:
        if not self._in_period:
            raise RuntimeError(
                "agent is outside a period; call begin_period() first"
            )

    def _check_class(self, class_index: int) -> None:
        if not 0 <= class_index < self.num_classes:
            raise IndexError("class index %d out of range" % class_index)
