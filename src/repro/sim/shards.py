"""Sharded multi-process federation: batched cross-shard bidding.

PR 7 vectorised the market tick; the whole market still ran in one
process.  This module partitions the federation's nodes across ``N``
worker processes by *query-class affinity* (classes whose bidder sets
overlap land on the same shard) and runs the market as a broker/shard
protocol:

* the **coordinator** owns the price/supply/matching plane — per-class
  candidate supply and price arrays plus node-indexed busy watermarks —
  and answers every request-for-bid exchange with the same vectorised
  arithmetic as :class:`repro.allocation.market_tick.MarketTickDispatcher`;
* each **shard** owns the execution plane (authoritative busy watermarks
  including negotiation delays, per-node latency RNG streams, outcome
  recording) and the eq-4 solve plane (the vectorised proportional
  seller problem with carry-over credit, one row per local node);
* per simulated tick the two exchange *batched* protocol messages —
  one :class:`~repro.protocol.messages.BidRequest` per class in the
  tick, broadcast to every shard, answered by one
  :class:`~repro.protocol.messages.Quote` per assignment — serialised
  through the :mod:`repro.protocol` codec over :class:`ShardTransport`,
  the protocol layer's third real transport (after the simulated
  network and the asyncio broker).

Determinism is the design's backbone:

* ``shards=1`` delegates verbatim to the single-process engine
  (:func:`repro.sim.federation.build_federation`), so every existing
  golden pins it byte-for-byte;
* ``shards>1`` is invariant to the shard count: every cross-node
  decision is made coordinator-side, shard work is per-node arithmetic
  over globally-ordered events, per-node latency streams are keyed by
  *node id* (not shard) through the :func:`derive_shard_seed` sha256
  scheme, and replies merge in fixed shard order at every tick barrier.
  Outcomes are globally sorted by ``(finish_ms, qid)`` before any
  float reduction, so summary means are bit-identical however the
  fleet is partitioned.

The ``shards>1`` engine is a *model* of the same market, not a replay
of the single-process event loop: negotiation delay is charged per
assignment from the winning node's latency stream (two legs) instead
of the slowest full-fan-out round trip, and refusal counters live in
the coordinator's arrays rather than per-agent lists.  Its outputs are
pinned by their own golden (``tests/golden/sharded_1000node_seed0.json``).

**Local market planes** (``market="local"``): the coordinator-owned
market plane above is the engine's serial bottleneck, but QA-NT's
pricing state factors cleanly along the catalog's *affinity
components* — the union-find groups :func:`plan_shards` already
computes.  Two query classes interact only through a shared bidder
(busy clock, max-price latch), so a component whose nodes all landed on
one shard can run its **entire** bid/price/refusal/solve dynamics
shard-side, fed by one-way ``mtick`` frames of encoded ``BidRequest``
messages (double-buffered: the coordinator routes and prices frame *t+1*
while shards still chew frame *t*).  Components split across shards
form the **residual plane**, priced and executed by the slim
coordinator with the identical :class:`_MarketPlane` arithmetic.  Every
plane is exactly the PR 8 market restricted to its component set, so
``invariant_payload()`` is bit-identical to the coordinator-plane
engine for *any* reconciliation interval, any shard count and any
transport mode.  The reconciliation interval R instead governs the
**price-reconciliation barrier**: every R market ticks the shards
return per-class price/supply digests plus busy watermarks that refresh
the coordinator's cross-shard quote mirror (:meth:`ShardedFederation
.stale_quotes`), bounding quote staleness at R ticks and flushing the
one-way frame pipeline.  ``mode="tcp"`` runs the same workers behind
length-prefixed JSON frames over localhost sockets (the
:mod:`repro.protocol.transport` framing helpers), so shards can span
machines; pipe and inline modes are untouched.
"""

from __future__ import annotations

import json
import math
import random
import resource
import socket
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:  # Same optional posture as repro.sim.fleet: no numpy, no sharding.
    import numpy as _np
except ImportError:  # pragma: no cover - single-process paths cover this
    _np = None

from ..core.qant import QantParameters
from ..protocol.messages import (
    BidRequest,
    Message,
    PeriodTick,
    ProtocolError,
    Quote,
    decode,
    encode,
)
from ..allocation.market_tick import refusal_raise
from ..protocol.transport import (
    FanoutResult,
    FrameDecoder,
    Transport,
    encode_frame,
)
from .faults import derive_fault_seed
from .federation import FederationConfig, run_single_mechanism
from .metrics import MetricsCollector

__all__ = [
    "ShardPlan",
    "ShardTransport",
    "ShardedFederation",
    "ShardedRunResult",
    "derive_shard_seed",
    "plan_shards",
    "split_market_classes",
]


def derive_shard_seed(seed: int, tag: Sequence[object]) -> int:
    """A process-stable child seed for one shard-layer sub-stream.

    Same sha256 derivation as :func:`repro.sim.faults.derive_fault_seed`
    (Python's builtin ``hash`` is salted per process, so sub-streams key
    off a digest of ``(seed, tag)`` instead): the same pair yields the
    same child seed in every worker process, which is what makes the
    sharded engine's latency streams partition- and process-invariant.
    """
    return derive_fault_seed(seed, tag)


# -- the partitioner ----------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic assignment of federation nodes to shards.

    ``shard_nodes[s]`` lists shard *s*'s nodes in ascending id order;
    ``loads[s]`` is the shard's bidding load — the number of
    (node, candidate-class) memberships it hosts, the quantity the
    partitioner balances.
    """

    num_shards: int
    shard_nodes: Tuple[Tuple[int, ...], ...]
    loads: Tuple[int, ...]

    @property
    def node_to_shard(self) -> Dict[int, int]:
        """Node id → owning shard index."""
        owner: Dict[int, int] = {}
        for shard, nodes in enumerate(self.shard_nodes):
            for nid in nodes:
                owner[nid] = shard
        return owner

    def imbalance(self) -> float:
        """Max-over-mean of the per-shard bidding loads (1.0 = perfect)."""
        if not self.loads:
            return 1.0
        mean = sum(self.loads) / len(self.loads)
        if mean <= 0:
            return 1.0
        return max(self.loads) / mean


def plan_shards(
    candidates_by_class: Mapping[int, Sequence[int]],
    node_ids: Sequence[int],
    num_shards: int,
) -> ShardPlan:
    """Partition ``node_ids`` into ``num_shards`` by class affinity.

    Nodes are first grouped by union-find over the classes' candidate
    sets (every class unions its bidders, so classes with overlapping
    bidder sets land in one affinity group), groups are ordered by their
    smallest member and flattened (members ascending), nodes bidding in
    no class are appended last, and the flat order is chopped into
    ``num_shards`` contiguous near-equal chunks.  Purely a function of
    the catalog — no RNG, no tie-breaks — so every process computes the
    identical plan.
    """
    if num_shards <= 0:
        raise ValueError("need at least one shard")
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for candidates in candidates_by_class.values():
        members = sorted(candidates)
        for nid in members:
            parent.setdefault(nid, nid)
        for nid in members[1:]:
            ra, rb = find(members[0]), find(nid)
            if ra != rb:
                # Smaller root wins, keeping group identity canonical.
                if rb < ra:
                    ra, rb = rb, ra
                parent[rb] = ra
    groups: Dict[int, List[int]] = {}
    for nid in parent:
        groups.setdefault(find(nid), []).append(nid)
    flat: List[int] = []
    for root in sorted(groups):
        flat.extend(sorted(groups[root]))
    flat.extend(sorted(nid for nid in node_ids if nid not in parent))
    if num_shards > len(flat):
        raise ValueError("more shards than nodes")
    base, extra = divmod(len(flat), num_shards)
    shard_nodes: List[Tuple[int, ...]] = []
    pos = 0
    for shard in range(num_shards):
        size = base + (1 if shard < extra else 0)
        shard_nodes.append(tuple(sorted(flat[pos : pos + size])))
        pos += size
    membership: Dict[int, int] = {}
    for candidates in candidates_by_class.values():
        for nid in candidates:
            membership[nid] = membership.get(nid, 0) + 1
    loads = tuple(
        sum(membership.get(nid, 0) for nid in nodes) for nodes in shard_nodes
    )
    return ShardPlan(
        num_shards=num_shards,
        shard_nodes=tuple(shard_nodes),
        loads=loads,
    )


def split_market_classes(
    candidates_by_class: Mapping[int, Sequence[int]], plan: ShardPlan
) -> Dict[int, int]:
    """Market-plane ownership of every query class under ``plan``.

    Returns ``owner``: class index → shard index when the class's whole
    *affinity component* landed inside one shard of ``plan`` (the class
    is **shard-local**: that shard may own its full bid/price/refusal
    dynamics), or ``-1`` when the component's nodes span shards (the
    class belongs to the coordinator's **residual plane**).

    Ownership is decided per component, never per class: two classes
    sharing a bidder are coupled through that node's busy clock and
    Section 5.1 max-price latch, so they must price inside one plane
    together — a class whose own candidates fit one shard still goes
    residual if a sibling class drags the component across the boundary.
    """
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for candidates in candidates_by_class.values():
        members = sorted(candidates)
        for nid in members:
            parent.setdefault(nid, nid)
        for nid in members[1:]:
            ra, rb = find(members[0]), find(nid)
            if ra != rb:
                if rb < ra:
                    ra, rb = rb, ra
                parent[rb] = ra
    node_to_shard = plan.node_to_shard
    component_shards: Dict[int, set] = {}
    for nid in parent:
        component_shards.setdefault(find(nid), set()).add(
            node_to_shard[nid]
        )
    owner: Dict[int, int] = {}
    for class_index, candidates in candidates_by_class.items():
        members = sorted(candidates)
        if not members:
            owner[class_index] = -1
            continue
        shards = component_shards[find(members[0])]
        owner[class_index] = next(iter(shards)) if len(shards) == 1 else -1
    return owner


# -- the shard worker ---------------------------------------------------------


class _ShardCore:
    """One shard's execution + solve plane (runs in-process or forked).

    The exact same class backs both transport modes, codec included, so
    an inline run is bit-identical to a forked one — the equivalence the
    tests pin.  All frames arrive pre-ordered by the coordinator; the
    core performs per-node arithmetic only, which is what makes its
    output independent of how nodes were grouped into shards.
    """

    def __init__(self, init: Mapping[str, object]) -> None:
        ids = list(init["node_ids"])
        self._ids = ids
        self._index = {nid: i for i, nid in enumerate(ids)}
        self._costs = _np.array(init["costs"], dtype=float)
        self._allow = _np.array(init["allowances"], dtype=float)
        self._seeds = list(init["latency_seeds"])
        self._base = float(init["base_ms"])
        self._jitter = float(init["jitter_ms"])
        self._num_classes = int(init["num_classes"])
        self.reset()

    def reset(self) -> None:
        n = len(self._ids)
        self._busy = _np.zeros(n, dtype=float)
        self._credit = _np.zeros((n, self._num_classes), dtype=float)
        # One latency stream per *node* (not per shard): repartitioning
        # the fleet must not reshuffle any node's delay draws.
        self._rngs = [random.Random(seed) for seed in self._seeds]
        self._cols: Tuple[List, ...] = tuple([] for _ in range(9))
        self._assigned = 0
        self._bids_seen = 0
        #: Wall-clock seconds this core spent handling frames since the
        #: last reset — the per-shard hotspot number ``repro profile
        #: --json`` (schema v2) surfaces, since cProfile cannot see into
        #: worker processes.
        self.self_time_s = 0.0

    def handle(self, frame: Tuple) -> Mapping[str, object]:
        started = time.perf_counter()
        try:
            return self._dispatch(frame)
        finally:
            self.self_time_s += time.perf_counter() - started

    def _dispatch(self, frame: Tuple) -> Mapping[str, object]:
        op = frame[0]
        if op == "tick":
            return self._tick(frame[1], frame[2], frame[3])
        if op == "solve":
            return self._solve(frame[1], frame[2])
        if op == "fanout":
            return self._fanout(frame[1])
        if op == "reset":
            self.reset()
            return {"ok": True}
        if op == "collect":
            return self._collect()
        raise ValueError("unknown shard frame %r" % (op,))

    def _tick(
        self, now: float, bids: Sequence[str], assignments: Sequence[Tuple]
    ) -> Mapping[str, object]:
        """One market tick: decode the bid broadcast, replay assignments.

        Every assignment row ``(qid, class, origin, arrival, resub,
        node)`` is replayed in coordinator order: the negotiation delay
        is two latency legs from the *node's* stream, the query starts
        when both the delay has elapsed and the node's FIFO is free
        (mirroring :meth:`repro.sim.node.SimulatedNode.enqueue`), and
        one Quote per assignment reports the authoritative finish back
        to the coordinator's busy mirror.
        """
        for payload in bids:
            decode(payload)  # validate the broadcast like any real peer
            self._bids_seen += 1
        index = self._index
        busy = self._busy
        costs = self._costs
        rngs = self._rngs
        base = self._base
        jitter = self._jitter
        cols = self._cols
        quotes: List[str] = []
        for qid, class_index, origin, arrival, resub, node in assignments:
            i = index[node]
            if jitter == 0.0:
                delay = base + base
            else:
                rnd = rngs[i].random
                delay = (base + jitter * rnd()) + (base + jitter * rnd())
            assigned = now + delay
            prior = busy[i]
            start = prior if prior > assigned else assigned
            finish = start + costs[i, class_index]
            busy[i] = finish
            cols[0].append(qid)
            cols[1].append(class_index)
            cols[2].append(origin)
            cols[3].append(arrival)
            cols[4].append(assigned)
            cols[5].append(node)
            cols[6].append(start)
            cols[7].append(finish)
            cols[8].append(resub)
            quotes.append(
                encode(
                    Quote(
                        qid=qid,
                        node_id=node,
                        class_index=class_index,
                        estimated_completion_ms=finish,
                    )
                )
            )
        self._assigned += len(assignments)
        return {"quotes": quotes}

    def _solve(self, now: float, prices) -> Mapping[str, object]:
        """Eq. 4 for every local node at once, with carry-over credit.

        Vectorises
        :meth:`repro.core.supply.CapacitySupplySet._solve_proportional`
        row-wise: density ``p/c`` (``p/inf == 0`` excludes classes the
        node cannot evaluate), weights ``(d/top)**2`` over a free
        capacity of ``max(0, allowance - backlog)``, then the QA-NT
        carry-over rounding ``whole = floor(credit + 1e-9)``.
        """
        P = _np.asarray(prices, dtype=float)
        backlog = self._busy - now
        _np.clip(backlog, 0.0, None, out=backlog)
        free = self._allow - backlog
        _np.clip(free, 0.0, None, out=free)
        D = P / self._costs
        top = D.max(axis=1)
        W = _np.zeros_like(D)
        rows = top > 0.0
        if rows.any():
            W[rows] = (D[rows] / top[rows, None]) ** 2.0
        total = W.sum(axis=1)
        total[total == 0.0] = 1.0
        counts = (free[:, None] * W / total[:, None]) / self._costs
        credit = self._credit
        credit += counts
        whole = _np.floor(credit + 1e-9)
        credit -= whole
        return {"supply": whole}

    def _fanout(self, payload: str) -> Mapping[str, object]:
        """One protocol message addressed to this shard as a peer.

        ``PeriodTick`` is the tick barrier (replies empty — the ack *is*
        the barrier); a ``BidRequest`` is answered with one Quote per
        local node able to evaluate the class, estimated from the
        shard's authoritative busy watermarks.
        """
        message = decode(payload)
        if isinstance(message, PeriodTick):
            return {"replies": []}
        if isinstance(message, BidRequest):
            k = message.class_index
            replies = []
            for i, nid in enumerate(self._ids):
                cost = self._costs[i, k]
                if math.isinf(cost):
                    continue
                replies.append(
                    encode(
                        Quote(
                            qid=message.qid,
                            node_id=nid,
                            class_index=k,
                            estimated_completion_ms=float(
                                self._busy[i] + cost
                            ),
                        )
                    )
                )
            return {"replies": replies}
        return {"replies": []}

    def _collect(self) -> Mapping[str, object]:
        return {
            "columns": self._cols,
            # Linux reports ru_maxrss in KiB; the bench harness
            # aggregates these across workers for `bench --mem`.
            "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            "assigned": self._assigned,
            "bids_seen": self._bids_seen,
            "self_time_s": self.self_time_s,
        }


# -- the market plane ---------------------------------------------------------


class _MarketPlane:
    """One self-contained QA-NT market over a subset of the federation.

    The full stack of the PR 8 coordinator *and* shard arithmetic —
    request-for-bid exchanges (the :func:`repro.allocation.market_tick
    .refusal_raise` steps-8/9 raise, the Section 5.1 activation latch,
    earliest-completion argmin), execution replay with node-keyed
    latency streams, and the eq. 4 period solve with carry-over credit —
    restricted to one set of affinity components.  Query classes only
    couple through shared bidders, so running each component set in its
    own plane performs bit-for-bit the same float operations, in the
    same order, as one global plane interleaving them: this is the
    equivalence that makes ``market="local"`` reproduce the
    coordinator-market digest for any shard count, transport mode and
    reconciliation interval.

    Instances run shard-side (one per shard, inside
    :class:`_LocalMarketCore` — per-shard dispatcher instances) and
    coordinator-side (the residual plane of split components).  The init
    mapping is JSON-safe so the identical spec crosses pipes and TCP
    sockets.
    """

    def __init__(self, init: Mapping[str, object]) -> None:
        ids = [int(nid) for nid in init["node_ids"]]
        self._ids = ids
        self._index = {nid: i for i, nid in enumerate(ids)}
        self._num_classes = int(init["num_classes"])
        costs = list(init["costs"])
        if ids:
            self._costs = _np.array(costs, dtype=float)
        else:
            self._costs = _np.zeros((0, self._num_classes), dtype=float)
        self._allow = _np.array(init["allowances"], dtype=float)
        self._seeds = [int(s) for s in init["latency_seeds"]]
        self._base = float(init["base_ms"])
        self._jitter = float(init["jitter_ms"])
        self._factor = float(init["factor"])
        self._floor = float(init["floor"])
        self._cap = float(init["cap"])
        self._adjustment = float(init["adjustment"])
        threshold = init.get("threshold")
        self._threshold = None if threshold is None else float(threshold)
        self._class_order: List[int] = []
        self._cand: Dict[int, object] = {}
        self._cand_ids: Dict[int, object] = {}
        self._lane_costs: Dict[int, object] = {}
        for class_index, cand in init["classes"]:
            k = int(class_index)
            members = [int(nid) for nid in cand]
            rows = _np.array(
                [self._index[nid] for nid in members], dtype=_np.intp
            )
            self._class_order.append(k)
            self._cand[k] = rows
            self._cand_ids[k] = _np.array(members, dtype=_np.int64)
            self._lane_costs[k] = self._costs[rows, k]
        # maxp baseline: a class the node can never evaluate keeps its
        # initial price of 1.0 forever, pinning the node's max price at
        # >= 1.0 (same rule as the coordinator-market arrays).
        self._maxp_base = _np.zeros(len(ids), dtype=float)
        for i in range(len(ids)):
            if bool(_np.isinf(self._costs[i]).any()):
                self._maxp_base[i] = 1.0
        self.reset(True)

    @property
    def node_ids(self) -> List[int]:
        """The plane's nodes in ascending id order."""
        return self._ids

    @property
    def class_indices(self) -> List[int]:
        """The plane's query classes (init order: ascending index)."""
        return self._class_order

    @property
    def pending_count(self) -> int:
        """Queries refused and waiting for the next period boundary."""
        return len(self._pending)

    @property
    def assigned(self) -> int:
        """Assignments executed since the last reset."""
        return self._assigned

    @property
    def exchanges(self) -> int:
        """Request-for-bid exchanges priced since the last reset."""
        return self._exchanges

    def reset(self, qa: bool) -> None:
        """Fresh run state + the bind-time eq. 4 solve (QA-NT only)."""
        n = len(self._ids)
        self._qa = bool(qa)
        #: Pricing busy mirror: optimistic within a tick, resynced to the
        #: authoritative execution clock at every tick's end (the exact
        #: two-phase discipline of the PR 8 coordinator + Quote resync).
        self._busy = _np.zeros(n, dtype=float)
        #: Authoritative per-node FIFO clocks (negotiation delay included).
        self._exec_busy = _np.zeros(n, dtype=float)
        self._credit = _np.zeros((n, self._num_classes), dtype=float)
        self._maxp = _np.ones(n, dtype=float)
        self._locked = _np.zeros(n, dtype=bool)
        self._rngs = [random.Random(seed) for seed in self._seeds]
        self._V: Dict[int, object] = {
            k: _np.ones(len(self._cand[k]), dtype=float)
            for k in self._class_order
        }
        self._R: Dict[int, object] = {
            k: _np.zeros(len(self._cand[k]), dtype=float)
            for k in self._class_order
        }
        self._period_serial = 0
        self._saturated_in: Dict[int, int] = {}
        self._pending: List[Tuple] = []
        self._cols: Tuple[List, ...] = tuple([] for _ in range(9))
        self._assigned = 0
        self._exchanges = 0
        if self._qa and n:
            self._period_solve(0.0)

    # -- ticking -------------------------------------------------------------

    def market_tick(self, now: float, rows: Sequence[Tuple]) -> int:
        """Price ``rows`` in order, replay the winners; refusals pool.

        Each row is ``(qid, class_index, origin, arrival, resub)``.
        Returns the number of assignments made.
        """
        qa = self._qa
        pending = self._pending
        assignments: List[Tuple] = []
        for row in rows:
            k = row[1]
            node = self._exchange(k, now) if qa else self._greedy(k, now)
            if node is None:
                pending.append(tuple(row))
            else:
                assignments.append(
                    (row[0], k, row[2], row[3], row[4], node)
                )
        self._exchanges += len(rows)
        if assignments:
            self._replay(now, assignments)
        return len(assignments)

    def _exchange(self, class_index: int, now: float) -> Optional[int]:
        """One QA-NT exchange — the PR 8 coordinator program verbatim,
        over the plane's local row indices."""
        if self._saturated_in.get(class_index) == self._period_serial:
            return None
        R = self._R[class_index]
        V = self._V[class_index]
        cand = self._cand[class_index]
        offers = R >= 1.0
        refuse = _np.nonzero(~offers)[0]
        if refuse.size:
            new, changed = refusal_raise(
                V[refuse], self._factor, self._floor, self._cap
            )
            V[refuse] = new
            rows_r = cand[refuse]
            m = self._maxp[rows_r]
            if changed.any():
                m = _np.maximum(m, new)
                self._maxp[rows_r] = m
            threshold = self._threshold
            if threshold is not None:
                passed = ~self._locked[rows_r]
                passed &= m < threshold
                self._locked[rows_r] = ~passed
                offers[refuse] = passed
        if not offers.any():
            if bool((V == self._cap).all()):
                self._saturated_in[class_index] = self._period_serial
            return None
        est = _np.maximum(self._busy[cand], now)
        est += self._lane_costs[class_index]
        est[~offers] = _np.inf
        winner = int(est.argmin())
        if R[winner] >= 1.0:
            R[winner] -= 1.0
        row = int(cand[winner])
        self._busy[row] = float(est[winner])
        return int(self._ids[row])

    def _greedy(self, class_index: int, now: float) -> int:
        """Greedy: every candidate offers; earliest completion wins."""
        cand = self._cand[class_index]
        est = _np.maximum(self._busy[cand], now)
        est += self._lane_costs[class_index]
        winner = int(est.argmin())
        row = int(cand[winner])
        self._busy[row] = float(est[winner])
        return int(self._ids[row])

    def _replay(self, now: float, assignments: Sequence[Tuple]) -> None:
        """Execution replay (the `_ShardCore._tick` program), then the
        pricing mirror resyncs to the authoritative clocks — the in-plane
        equivalent of the Quote barrier."""
        index = self._index
        ebusy = self._exec_busy
        costs = self._costs
        rngs = self._rngs
        base = self._base
        jitter = self._jitter
        cols = self._cols
        busy = self._busy
        for qid, class_index, origin, arrival, resub, node in assignments:
            i = index[node]
            if jitter == 0.0:
                delay = base + base
            else:
                rnd = rngs[i].random
                delay = (base + jitter * rnd()) + (base + jitter * rnd())
            assigned = now + delay
            prior = ebusy[i]
            start = prior if prior > assigned else assigned
            finish = start + costs[i, class_index]
            ebusy[i] = finish
            cols[0].append(qid)
            cols[1].append(class_index)
            cols[2].append(origin)
            cols[3].append(arrival)
            cols[4].append(assigned)
            cols[5].append(node)
            cols[6].append(start)
            cols[7].append(finish)
            cols[8].append(resub)
            busy[i] = finish
        self._assigned += len(assignments)

    # -- period boundary ------------------------------------------------------

    def boundary(self, now: float) -> int:
        """Steps 12-14 decay, eq. 4, latch reset, retries; returns the
        pending count left after the retry tick."""
        if not self._qa:
            return len(self._pending)
        for k in self._class_order:
            R = self._R[k]
            V = self._V[k]
            mask = R > 0.0
            if mask.any():
                f = 1.0 - R * self._adjustment
                _np.maximum(f, 0.0, out=f)
                new = V * f
                _np.maximum(new, self._floor, out=new)
                V[:] = _np.where(mask, new, V)
        if len(self._ids):
            self._period_solve(now)
        if self._pending:
            retry = [
                (qid, class_index, origin, arrival, resub + 1)
                for qid, class_index, origin, arrival, resub in self._pending
            ]
            self._pending = []
            self.market_tick(now, retry)
        return len(self._pending)

    def _period_solve(self, now: float) -> None:
        """Eq. 4 over the plane's nodes (the `_ShardCore._solve` program)
        + the new-period latch/max-price/saturation re-arm."""
        prices = _np.ones((len(self._ids), self._num_classes), dtype=float)
        for k in self._class_order:
            prices[self._cand[k], k] = self._V[k]
        backlog = self._exec_busy - now
        _np.clip(backlog, 0.0, None, out=backlog)
        free = self._allow - backlog
        _np.clip(free, 0.0, None, out=free)
        D = prices / self._costs
        top = D.max(axis=1)
        W = _np.zeros_like(D)
        rows = top > 0.0
        if rows.any():
            W[rows] = (D[rows] / top[rows, None]) ** 2.0
        total = W.sum(axis=1)
        total[total == 0.0] = 1.0
        counts = (free[:, None] * W / total[:, None]) / self._costs
        credit = self._credit
        credit += counts
        whole = _np.floor(credit + 1e-9)
        credit -= whole
        for k in self._class_order:
            self._R[k][:] = whole[self._cand[k], k]
        self._locked[:] = False
        self._maxp[:] = self._maxp_base
        for k in self._class_order:
            _np.maximum.at(self._maxp, self._cand[k], self._V[k])
        self._period_serial += 1

    # -- reporting ------------------------------------------------------------

    def reconcile_digest(self) -> Dict[str, object]:
        """Per-class price/supply digests + authoritative busy watermarks
        — the payload of one price-reconciliation barrier."""
        return {
            "prices": [
                [k, self._V[k].tolist()] for k in self._class_order
            ],
            "supply": [
                [k, self._R[k].tolist()] for k in self._class_order
            ],
            "busy": self._exec_busy.tolist(),
            "pending": len(self._pending),
            "assigned": self._assigned,
        }

    def quotes(self, class_index: int) -> List[Tuple[int, float]]:
        """Authoritative ``(node, est_completion)`` quotes for one class."""
        if class_index not in self._cand:
            return []
        cand = self._cand[class_index]
        ids = self._cand_ids[class_index]
        est = self._exec_busy[cand] + self._lane_costs[class_index]
        return [
            (int(nid), float(e)) for nid, e in zip(ids.tolist(), est.tolist())
        ]

    def collect(self) -> Dict[str, object]:
        """Outcome columns + run counters (the final-barrier payload)."""
        return {
            "columns": self._cols,
            "assigned": self._assigned,
            "exchanges": self._exchanges,
            "pending": len(self._pending),
        }


class _LocalMarketCore:
    """Worker-side front of one shard-local market plane.

    The ``market="local"`` counterpart of :class:`_ShardCore`: instead
    of replaying coordinator decisions, it *makes* them for the classes
    packed onto its shard.  ``mtick``/``mboundary`` frames are one-way
    during the trace (posted, never answered — the double-buffer);
    ``reconcile`` and ``collect`` are the sync points.
    """

    def __init__(self, init: Mapping[str, object]) -> None:
        self._plane = _MarketPlane(init["plane"])
        self._bids_seen = 0
        self.self_time_s = 0.0

    def handle(self, frame: Tuple) -> Mapping[str, object]:
        started = time.perf_counter()
        try:
            return self._dispatch(frame)
        finally:
            self.self_time_s += time.perf_counter() - started

    def _dispatch(self, frame: Tuple) -> Mapping[str, object]:
        op = frame[0]
        plane = self._plane
        if op == "mtick":
            now = frame[1]
            rows = []
            for payload in frame[2]:
                bid = decode(payload)
                rows.append(
                    (bid.qid, bid.class_index, bid.origin_node, now,
                     bid.attempt)
                )
            self._bids_seen += len(rows)
            plane.market_tick(now, rows)
            return {"ok": True}
        if op == "mboundary":
            return {"pending": plane.boundary(frame[1])}
        if op == "reconcile":
            digest = dict(plane.reconcile_digest())
            digest["self_time_s"] = self.self_time_s
            return digest
        if op == "reset":
            plane.reset(bool(frame[1]))
            self._bids_seen = 0
            self.self_time_s = 0.0
            return {"ok": True}
        if op == "collect":
            reply = dict(plane.collect())
            reply["maxrss_kb"] = resource.getrusage(
                resource.RUSAGE_SELF
            ).ru_maxrss
            reply["bids_seen"] = self._bids_seen
            reply["self_time_s"] = self.self_time_s
            return reply
        if op == "fanout":
            return self._fanout(frame[1])
        raise ValueError("unknown market-shard frame %r" % (op,))

    def _fanout(self, payload: str) -> Mapping[str, object]:
        """Protocol fan-out against the plane's authoritative clocks."""
        message = decode(payload)
        if isinstance(message, BidRequest):
            replies = [
                encode(
                    Quote(
                        qid=message.qid,
                        node_id=nid,
                        class_index=message.class_index,
                        estimated_completion_ms=est,
                    )
                )
                for nid, est in self._plane.quotes(message.class_index)
            ]
            return {"replies": replies}
        return {"replies": []}


#: Worker-core registry: ``shard_inits[i]["kind"]`` picks the class.
_CORE_KINDS = {"exec": _ShardCore, "market": _LocalMarketCore}


def _make_core(init: Mapping[str, object]):
    return _CORE_KINDS[init.get("kind", "exec")](init)


def _shard_worker(conn, init: Mapping[str, object]) -> None:
    """Forked worker main loop: one frame in, one reply out — except
    ``("post", inner)`` wrappers, which are handled without a reply (the
    one-way double-buffer path: the coordinator keeps routing the next
    tick while this worker chews the current one)."""
    core = _make_core(init)
    while True:
        try:
            frame = conn.recv()
        except EOFError:  # pragma: no cover - parent died
            return
        if frame[0] == "close":
            conn.send({"ok": True})
            conn.close()
            return
        if frame[0] == "post":
            core.handle(frame[1])
            continue
        conn.send(core.handle(frame))


def _wire_default(obj):
    """``json.dumps`` fallback for numpy values in wire frames."""
    if _np is not None:
        if isinstance(obj, _np.ndarray):
            return obj.tolist()
        if isinstance(obj, _np.generic):
            return obj.item()
    raise TypeError(
        "cannot serialise %r for the shard wire" % type(obj).__name__
    )


class _WireChannel:
    """One JSON-frame byte stream over a connected socket.

    Frames are ``json.dumps`` payloads wrapped in the protocol layer's
    length-prefix framing (:func:`repro.protocol.transport.encode_frame`
    / :class:`~repro.protocol.transport.FrameDecoder`), so both ends
    reassemble partial reads deterministically.  JSON round-trips floats
    exactly (shortest-repr), which is what keeps tcp mode bit-identical
    to pipes.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._decoder = FrameDecoder()
        self._frames: deque = deque()

    def send_obj(self, obj) -> None:
        payload = json.dumps(obj, default=_wire_default).encode("utf-8")
        self._sock.sendall(encode_frame(payload))

    def recv_obj(self):
        while not self._frames:
            data = self._sock.recv(1 << 16)
            if not data:
                raise EOFError("shard wire closed")
            self._frames.extend(self._decoder.feed(data))
        return json.loads(self._frames.popleft())

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def _tcp_shard_worker(host: str, port: int, index: int) -> None:
    """TCP worker main loop: connect, identify, receive the init frame,
    then serve frames exactly like the pipe worker.

    The worker learns *everything* — including its shard spec — over the
    socket, so the same loop could run on another machine given only the
    coordinator's address.
    """
    sock = socket.create_connection((host, port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    channel = _WireChannel(sock)
    channel.send_obj(["hello", index])
    core = _make_core(channel.recv_obj())
    while True:
        try:
            frame = channel.recv_obj()
        except EOFError:  # pragma: no cover - parent died
            return
        if frame[0] == "close":
            channel.send_obj({"ok": True})
            channel.close()
            return
        if frame[0] == "post":
            core.handle(frame[1])
            continue
        channel.send_obj(core.handle(frame))


# -- the transport ------------------------------------------------------------


class ShardTransport(Transport):
    """Pipe-backed transport to a pool of shard workers.

    The :class:`~repro.protocol.transport.Transport` seam's third real
    backend: peers are shard indices, :meth:`fanout` carries encoded
    protocol messages to each shard and gathers their decoded replies
    in fixed shard order.  :meth:`exchange` is the lower-level pipelined
    tick barrier the sharded federation drives — all frames are written
    before any reply is read, and replies are read in shard order, so
    the merge order (and therefore every downstream float) never
    depends on worker scheduling.

    ``mode="fork"`` forks one daemon worker per shard over
    :func:`multiprocessing.Pipe`; ``mode="inline"`` runs the identical
    cores in-process (codec included) — the equivalence tests pin fork
    == inline bit-for-bit.  ``mode="tcp"`` forks the same workers but
    moves every frame as length-prefixed JSON over localhost sockets
    (the :mod:`repro.protocol.transport` framing helpers), the
    machine-spanning wire: workers receive even their shard spec over
    the socket, so only the fork itself is process-local.
    """

    def __init__(
        self, shard_inits: Sequence[Mapping[str, object]], mode: str = "fork"
    ) -> None:
        if mode not in ("fork", "inline", "tcp"):
            raise ValueError(
                "transport mode must be 'fork', 'inline' or 'tcp'"
            )
        self._mode = mode
        self._num_shards = len(shard_inits)
        #: Wall-clock milliseconds spent blocked at tick barriers
        #: (coordinator waiting on shard replies).
        self.barrier_wait_ms = 0.0
        #: Protocol messages moved (fanout legs only; the federation
        #: accounts bid/quote volume itself).
        self.messages = 0
        #: One-way frames dispatched without a reply barrier (the
        #: double-buffered tick pipeline; see :meth:`post`).
        self.posted_frames = 0
        self._child_peak_kb = 0
        self._closed = False
        if mode == "fork":
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            self._conns = []
            self._procs = []
            for init in shard_inits:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(child_conn, init),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        elif mode == "tcp":
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(("127.0.0.1", 0))
            listener.listen(max(1, len(shard_inits)))
            host, port = listener.getsockname()
            self._procs = []
            for index in range(len(shard_inits)):
                proc = ctx.Process(
                    target=_tcp_shard_worker,
                    args=(host, port, index),
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
            channels: List[Optional[_WireChannel]] = [None] * len(
                shard_inits
            )
            for _ in shard_inits:
                sock, _addr = listener.accept()
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                channel = _WireChannel(sock)
                hello = channel.recv_obj()
                channels[int(hello[1])] = channel
            listener.close()
            self._channels = channels
            for channel, init in zip(channels, shard_inits):
                channel.send_obj(init)
        else:
            self._cores = [_make_core(init) for init in shard_inits]

    @property
    def num_shards(self) -> int:
        """Number of shard peers behind this transport."""
        return self._num_shards

    @property
    def mode(self) -> str:
        """``"fork"`` or ``"inline"``."""
        return self._mode

    def exchange(
        self, frames: Sequence[Optional[Tuple]]
    ) -> List[Optional[Mapping[str, object]]]:
        """One pipelined barrier: frame *i* to shard *i*, replies in order.

        ``None`` frames skip their shard.  In fork mode every frame is
        written before the first reply is read, so shards overlap their
        work; the time spent blocked on replies accumulates into
        :attr:`barrier_wait_ms`.
        """
        if self._mode == "inline":
            start = time.perf_counter()
            replies: List[Optional[Mapping[str, object]]] = [
                None if frame is None else core.handle(frame)
                for core, frame in zip(self._cores, frames)
            ]
            self.barrier_wait_ms += (time.perf_counter() - start) * 1e3
            return replies
        if self._mode == "tcp":
            channels = self._channels
            for channel, frame in zip(channels, frames):
                if frame is not None:
                    channel.send_obj(frame)
            start = time.perf_counter()
            replies = [
                None if frame is None else channel.recv_obj()
                for channel, frame in zip(channels, frames)
            ]
            self.barrier_wait_ms += (time.perf_counter() - start) * 1e3
            return replies
        conns = self._conns
        for conn, frame in zip(conns, frames):
            if frame is not None:
                conn.send(frame)
        start = time.perf_counter()
        replies = [
            None if frame is None else conn.recv()
            for conn, frame in zip(conns, frames)
        ]
        self.barrier_wait_ms += (time.perf_counter() - start) * 1e3
        return replies

    def post(self, frames: Sequence[Optional[Tuple]]) -> None:
        """One-way dispatch: frame *i* to shard *i*, no replies read.

        The double-buffer verb: the coordinator keeps routing tick *t+1*
        while the workers chew tick *t*; OS pipe/socket buffers provide
        the backpressure.  Workers process frames strictly in arrival
        order, so any later :meth:`exchange` barrier observes every
        posted frame's effects — a sync frame *is* the pipeline flush.
        Inline mode handles the frames synchronously (same cores, no
        pipeline), preserving bit-identity across modes.
        """
        posted = 0
        if self._mode == "inline":
            for core, frame in zip(self._cores, frames):
                if frame is not None:
                    core.handle(frame)
                    posted += 1
        elif self._mode == "tcp":
            for channel, frame in zip(self._channels, frames):
                if frame is not None:
                    channel.send_obj(["post", frame])
                    posted += 1
        else:
            for conn, frame in zip(self._conns, frames):
                if frame is not None:
                    conn.send(("post", frame))
                    posted += 1
        self.posted_frames += posted

    def fanout(
        self,
        origin: int,
        peers: Sequence[int],
        request: Optional[Message] = None,
    ) -> FanoutResult:
        """Send ``request`` to each shard peer; gather decoded replies.

        The encoded payload is shared across peers (one serialisation,
        N deliveries — the batched-broadcast idiom the tick path also
        uses); replies decode in shard order into ``replies``.
        ``delay_ms`` is 0: shard hops are process-local, and simulated
        time is the coordinator's business, not the transport's.
        """
        if request is None:
            raise ProtocolError("ShardTransport requires a real message")
        peer_list = list(peers)
        payload = encode(request)
        frames: List[Optional[Tuple]] = [None] * self._num_shards
        for peer in peer_list:
            frames[peer] = ("fanout", payload)
        raw = self.exchange(frames)
        replies: List[Message] = []
        for peer in peer_list:
            reply = raw[peer]
            if reply is not None:
                replies.extend(decode(p) for p in reply["replies"])
        messages = 2 * len(peer_list)
        self.messages += messages
        return FanoutResult(
            delay_ms=0.0,
            messages=messages,
            delivered=tuple(peer_list),
            replied=tuple(peer_list),
            replies=tuple(replies),
        )

    def note_child_peak_kb(self, peak_kb: int) -> None:
        """Record the workers' peak RSS (from a collect barrier)."""
        if peak_kb > self._child_peak_kb:
            self._child_peak_kb = peak_kb

    def child_peak_kb(self) -> int:
        """Peak worker-process RSS in KiB (0 in inline mode).

        Both child-bearing modes report: forked-pipe workers *and* tcp
        workers fold their ``ru_maxrss`` through the collect barrier —
        `bench --mem` sums this into the kernel's footprint.
        """
        return self._child_peak_kb if self._mode != "inline" else 0

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._mode == "fork":
            for conn in self._conns:
                try:
                    conn.send(("close",))
                    conn.recv()
                except (BrokenPipeError, EOFError, OSError):
                    pass
                conn.close()
            for proc in self._procs:
                proc.join(timeout=5.0)
        elif self._mode == "tcp":
            for channel in self._channels:
                try:
                    channel.send_obj(["close"])
                    channel.recv_obj()
                except (BrokenPipeError, EOFError, OSError):
                    pass
                channel.close()
            for proc in self._procs:
                proc.join(timeout=5.0)


# -- the merged result --------------------------------------------------------


class ShardedRunResult:
    """Outcome of one sharded run, merged across shards.

    Outcomes live as nine parallel numpy columns, globally sorted by
    ``(finish_ms, qid)`` *before* any reduction — the same array
    therefore feeds every float sum regardless of how the fleet was
    partitioned, which is what makes the summary statistics
    shard-count-invariant bit-for-bit.
    """

    def __init__(
        self,
        columns,
        dropped: int,
        messages: int,
        shards: int,
        collector: MetricsCollector,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self._columns = columns
        self._dropped = dropped
        self._messages = messages
        self._shards = shards
        self._collector = collector
        self._metrics = metrics

    @classmethod
    def from_metrics(
        cls, metrics: MetricsCollector, messages: int
    ) -> "ShardedRunResult":
        """Wrap a single-process run (the ``shards=1`` delegation)."""
        return cls(
            columns=None,
            dropped=metrics.dropped,
            messages=messages,
            shards=1,
            collector=metrics,
            metrics=metrics,
        )

    # -- summary -------------------------------------------------------------

    @property
    def shards(self) -> int:
        """Shard count of the run (1 = single-process delegation)."""
        return self._shards

    @property
    def completed(self) -> int:
        """Queries that finished."""
        if self._metrics is not None:
            return self._metrics.completed
        return len(self._columns[0])

    @property
    def dropped(self) -> int:
        """Queries still unserved when the run ended."""
        return self._dropped

    @property
    def messages(self) -> int:
        """Protocol messages the run moved (network messages at
        ``shards=1``; codec-serialised bid/quote/fanout messages
        otherwise)."""
        return self._messages

    def mean_response_ms(self) -> float:
        """Average response time over the globally sorted outcomes."""
        if self._metrics is not None:
            return self._metrics.mean_response_ms()
        n = len(self._columns[0])
        if not n:
            return math.nan
        return float(_np.sum(self._columns[7] - self._columns[3])) / n

    def percentile_response_ms(self, fraction: float) -> float:
        """Response-time percentile with the collector's index rule."""
        if self._metrics is not None:
            return self._metrics.percentile_response_ms(fraction)
        if not 0 <= fraction <= 1:
            raise ValueError("fraction must be in [0, 1]")
        n = len(self._columns[0])
        if not n:
            return math.nan
        ordered = _np.sort(self._columns[7] - self._columns[3])
        return float(ordered[min(n - 1, int(fraction * n))])

    def batch_summary(self) -> Dict[str, float]:
        """The tick/shard counters (shard keys only on sharded runs)."""
        return self._collector.batch_summary()

    def outcome_digest(self) -> str:
        """SHA-256 over every field of every outcome, completion order.

        The exact format of ``tests/test_golden_trace._outcome_digest``
        (``%r`` shortest round-trip floats), over the
        ``(finish_ms, qid)``-sorted columns — two runs hash equal iff
        every recorded bit is equal.
        """
        import hashlib

        digest = hashlib.sha256()
        if self._metrics is not None:
            for o in self._metrics.outcomes:
                digest.update(
                    (
                        "%d,%d,%d,%r,%r,%d,%r,%r,%d;"
                        % (
                            o.qid,
                            o.class_index,
                            o.origin_node,
                            o.arrival_ms,
                            o.assigned_ms,
                            o.node_id,
                            o.start_ms,
                            o.finish_ms,
                            o.resubmissions,
                        )
                    ).encode()
                )
            return digest.hexdigest()
        # ``.tolist()`` first: ``%r`` of a numpy scalar is
        # ``np.float64(...)`` on numpy >= 2, not the bare float repr.
        cols = [c.tolist() for c in self._columns]
        for row in zip(*cols):
            digest.update(("%d,%d,%d,%r,%r,%d,%r,%r,%d;" % row).encode())
        return digest.hexdigest()

    def payload(self) -> Dict[str, object]:
        """Full golden-style payload (includes shard-dependent counters)."""
        payload = self.invariant_payload()
        payload["messages"] = self.messages
        payload["batch_summary"] = self.batch_summary()
        return payload

    def invariant_payload(self) -> Dict[str, object]:
        """The shard-count-invariant slice of :meth:`payload`.

        Message counts and shard counters legitimately change with the
        partition (bids broadcast to more shards cost more messages);
        the *market outcome* must not.  This is what the sharded golden
        pins across shard counts and ``--jobs`` settings.
        """
        return {
            "completed": self.completed,
            "dropped": self.dropped,
            "mean_response_ms": self.mean_response_ms(),
            "p99_response_ms": self.percentile_response_ms(0.99),
            "outcome_digest": self.outcome_digest(),
        }


# -- the sharded federation ---------------------------------------------------


class ShardedFederation:
    """Front of the sharded engine: owns the worker pool and tick barrier.

    Construction mirrors :func:`repro.sim.federation.build_federation`
    minus the allocator (the mechanism is chosen per :meth:`run`, so one
    worker pool serves qa-nt and greedy back to back — the bench kernel
    relies on this).  ``shards=1`` takes the single-process engine
    verbatim; ``shards>1`` runs the broker/shard protocol described in
    the module docstring.
    """

    _MECHANISMS = ("qa-nt", "greedy")

    def __init__(
        self,
        specs,
        placement,
        classes,
        cost_model,
        config: Optional[FederationConfig] = None,
        shards: int = 1,
        mode: str = "fork",
        market: str = "coordinator",
        reconcile_interval: int = 1,
        parameters: Optional[QantParameters] = None,
        activation_threshold: Optional[float] = 2.0,
        allowance_factor: float = 2.0,
    ) -> None:
        if shards <= 0:
            raise ValueError("need at least one shard")
        if market not in ("coordinator", "local"):
            raise ValueError("market must be 'coordinator' or 'local'")
        if reconcile_interval < 1:
            raise ValueError("reconcile_interval must be >= 1")
        self._market = market
        self._reconcile_interval = int(reconcile_interval)
        #: Per-shard aggregate frame-handling self-time of the last run
        #: (filled by the collect barrier; ``repro profile --json`` v2).
        self.last_shard_self_time_s: List[float] = []
        self._specs = specs
        self._placement = placement
        self._classes = classes
        self._cost_model = cost_model
        self._config = config or FederationConfig()
        self._shards = shards
        self._params = parameters or QantParameters()
        self._threshold = activation_threshold
        self._allowance_factor = allowance_factor
        self._transport: Optional[ShardTransport] = None
        if shards == 1:
            self._plan = None
            return
        if _np is None:  # pragma: no cover - numpy ships with the stack
            raise RuntimeError("sharded federations require numpy")
        candidates_by_class = {
            qc.index: tuple(sorted(qc.candidate_nodes(placement)))
            for qc in classes
        }
        self._candidates = candidates_by_class
        node_ids = list(placement.node_ids)
        self._plan = plan_shards(candidates_by_class, node_ids, shards)
        self._node_to_shard = self._plan.node_to_shard
        num_nodes = len(node_ids)
        num_classes = len(classes)
        # Coordinator market plane: per class, candidate lanes with their
        # cost and price/supply arrays; per node, the busy mirror plus the
        # agent-global max-price and enforce-latch arrays the dispatcher
        # arithmetic needs.
        self._cand: Dict[int, object] = {}
        self._lane_costs: Dict[int, object] = {}
        cost_rows: Dict[int, List[float]] = {
            nid: [math.inf] * num_classes for nid in node_ids
        }
        for qc in classes:
            cand = candidates_by_class[qc.index]
            costs = [
                cost_model.execution_time_ms(qc, specs[nid]) for nid in cand
            ]
            self._cand[qc.index] = _np.array(cand, dtype=_np.int64)
            self._lane_costs[qc.index] = _np.array(costs, dtype=float)
            for nid, cost in zip(cand, costs):
                cost_rows[nid][qc.index] = cost
        # maxp baseline: a class the node can never evaluate keeps its
        # initial price of 1.0 forever (no refusals, no leftover supply),
        # so it pins the node's max price at >= 1.0.
        self._maxp_base = _np.zeros(num_nodes, dtype=float)
        for nid in node_ids:
            if any(math.isinf(c) for c in cost_rows[nid]):
                self._maxp_base[nid] = 1.0
        self._busy = _np.zeros(num_nodes, dtype=float)
        self._maxp = _np.ones(num_nodes, dtype=float)
        self._locked = _np.zeros(num_nodes, dtype=bool)
        self._V: Dict[int, object] = {}
        self._R: Dict[int, object] = {}
        self._factor = 1.0 + self._params.adjustment
        self._floor = self._params.price_floor
        self._cap = self._params.price_cap
        self._adjustment = self._params.adjustment
        # Per-node allowance: one period of capacity plus headroom for
        # the costliest class the node can evaluate (the single-process
        # engine's allowance rule) — shared by both market layouts.
        allowance_by_node: Dict[int, float] = {}
        for nid in node_ids:
            finite = [c for c in cost_rows[nid] if not math.isinf(c)]
            allowance_by_node[nid] = (
                self._config.period_ms
                + allowance_factor * max(finite, default=0.0)
            )
        if market == "local":
            shard_inits = self._build_local_planes(
                cost_rows, allowance_by_node, num_classes
            )
            self._transport = ShardTransport(shard_inits, mode=mode)
            return
        # Per (class, shard): the class's candidate-lane indices owned by
        # the shard and the matching row positions in the shard's local
        # node order — the scatter/gather tables of the solve barrier.
        self._shard_rows: List[Dict[int, Tuple]] = []
        shard_inits = []
        for shard_index in range(shards):
            local = list(self._plan.shard_nodes[shard_index])
            local_pos = {nid: i for i, nid in enumerate(local)}
            tables: Dict[int, Tuple] = {}
            for qc in classes:
                cand = candidates_by_class[qc.index]
                lanes = [
                    lane for lane, nid in enumerate(cand) if nid in local_pos
                ]
                rows = [local_pos[cand[lane]] for lane in lanes]
                tables[qc.index] = (
                    _np.array(lanes, dtype=_np.intp),
                    _np.array(rows, dtype=_np.intp),
                )
            self._shard_rows.append(tables)
            shard_inits.append(
                {
                    "node_ids": local,
                    "costs": [cost_rows[nid] for nid in local],
                    "allowances": [allowance_by_node[nid] for nid in local],
                    "latency_seeds": [
                        derive_shard_seed(
                            self._config.seed, ("shard-node-latency", nid)
                        )
                        for nid in local
                    ],
                    "base_ms": self._config.latency.base_ms,
                    "jitter_ms": self._config.latency.jitter_ms,
                    "num_classes": num_classes,
                }
            )
        self._transport = ShardTransport(shard_inits, mode=mode)
        self._period_serial = 0
        self._saturated_in: Dict[int, int] = {}

    def _build_local_planes(
        self,
        cost_rows: Mapping[int, List[float]],
        allowance_by_node: Mapping[int, float],
        num_classes: int,
    ) -> List[Dict[str, object]]:
        """Partition the market into shard planes + the residual plane.

        Ownership is decided per affinity *component* (classes coupled
        by a shared bidder must share one plane's latch/busy state), via
        :func:`split_market_classes`.  Shard-owned components become one
        JSON-safe ``_MarketPlane`` init per shard; split components form
        the coordinator's in-process residual plane.  Candidate tuples
        keep their global ascending order, so every plane's lane arrays
        are bit-compatible with the coordinator-market layout.
        """
        candidates_by_class = self._candidates
        self._owner = split_market_classes(candidates_by_class, self._plan)
        plane_classes: List[List[int]] = [[] for _ in range(self._shards)]
        residual_classes: List[int] = []
        for k in sorted(self._owner):
            s = self._owner[k]
            if s >= 0:
                plane_classes[s].append(k)
            else:
                residual_classes.append(k)
        self._plane_classes = plane_classes
        self._residual_classes = residual_classes
        self._active_plane = [bool(ks) for ks in plane_classes]

        def plane_init(class_indices: Sequence[int]) -> Dict[str, object]:
            nodes = sorted(
                {
                    nid
                    for k in class_indices
                    for nid in candidates_by_class[k]
                }
            )
            return {
                "node_ids": nodes,
                "num_classes": num_classes,
                "costs": [cost_rows[nid] for nid in nodes],
                "allowances": [allowance_by_node[nid] for nid in nodes],
                "latency_seeds": [
                    derive_shard_seed(
                        self._config.seed, ("shard-node-latency", nid)
                    )
                    for nid in nodes
                ],
                "base_ms": self._config.latency.base_ms,
                "jitter_ms": self._config.latency.jitter_ms,
                "factor": self._factor,
                "floor": self._floor,
                "cap": self._cap,
                "adjustment": self._adjustment,
                "threshold": self._threshold,
                "classes": [
                    [k, list(candidates_by_class[k])] for k in class_indices
                ],
            }

        inits = [plane_init(ks) for ks in plane_classes]
        self._plane_nodes = [list(init["node_ids"]) for init in inits]
        self._residual = _MarketPlane(plane_init(residual_classes))
        # Cross-shard quote mirror: refreshed by every reconciliation
        # barrier, read by :meth:`stale_quotes` — never by the market
        # arithmetic itself (exactness does not depend on R).
        self._mirror_busy = _np.zeros(len(self._busy), dtype=float)
        self._mirror_V: Dict[int, List[float]] = {}
        self._mirror_R: Dict[int, List[float]] = {}
        self._reconcile_barriers = 0
        self._reconcile_lag_max = 0
        self._staleness_max = 0.0
        self._boundaries_since_reconcile = 0
        return [{"kind": "market", "plane": init} for init in inits]

    # -- lifecycle -----------------------------------------------------------

    @property
    def plan(self) -> Optional[ShardPlan]:
        """The node partition (None at ``shards=1``)."""
        return self._plan

    @property
    def transport(self) -> Optional[ShardTransport]:
        """The shard transport (None at ``shards=1``)."""
        return self._transport

    def close(self) -> None:
        """Shut the worker pool down (safe to call twice)."""
        if self._transport is not None:
            self._transport.close()

    def __enter__(self) -> "ShardedFederation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- driving -------------------------------------------------------------

    def run(self, trace, mechanism: str = "qa-nt") -> ShardedRunResult:
        """Execute ``trace`` under ``mechanism`` and merge the outcomes."""
        if mechanism not in self._MECHANISMS:
            raise ValueError(
                "sharded federations support %s, not %r"
                % ("/".join(self._MECHANISMS), mechanism)
            )
        if not trace:
            raise ValueError("cannot run an empty workload trace")
        if self._shards == 1:
            return self._run_single(trace, mechanism)
        if self._market == "local":
            return self._run_local(trace, mechanism)
        return self._run_sharded(trace, mechanism)

    def _run_single(self, trace, mechanism: str) -> ShardedRunResult:
        """The ``shards=1`` delegation: literally the one-process engine."""
        metrics, messages = run_single_mechanism(
            self._specs,
            self._placement,
            self._classes,
            self._cost_model,
            trace,
            mechanism,
            self._config,
            parameters=self._params,
            activation_threshold=self._threshold,
            allowance_factor=self._allowance_factor,
        )
        return ShardedRunResult.from_metrics(metrics, messages)

    # -- the sharded coordinator ---------------------------------------------

    def _run_sharded(self, trace, mechanism: str) -> ShardedRunResult:
        transport = self._transport
        qa = mechanism == "qa-nt"
        collector = MetricsCollector()
        self._messages = 0
        self._cross_shard_bids = 0
        self._vector_exchanges = 0
        transport.barrier_wait_ms = 0.0
        self._reset(qa)
        if any(
            trace[i].time_ms > trace[i + 1].time_ms
            for i in range(len(trace) - 1)
        ):
            trace = sorted(trace, key=lambda e: e.time_ms)
        horizon = max(e.time_ms for e in trace)
        period = self._config.period_ms
        pending: List[Tuple] = []
        next_boundary = period
        period_index = 0
        qid = 0
        i, total = 0, len(trace)
        while i < total:
            t = trace[i].time_ms
            j = i
            while j < total and trace[j].time_ms == t:
                j += 1
            # The single-process engine schedules the period tick ahead
            # of same-timestamp arrivals; boundary-first matches it.
            while qa and next_boundary <= t:
                pending = self._boundary(
                    next_boundary, period_index, pending, collector
                )
                period_index += 1
                next_boundary += period
            queries = [
                (qid + n, e.class_index, e.origin_node, t, 0)
                for n, e in enumerate(trace[i:j])
            ]
            qid += len(queries)
            pending.extend(self._market_tick(t, queries, collector, qa))
            i = j
        # Drain: keep ticking boundaries while a backlog exists, then
        # stop — an empty pending pool can never refill, so the
        # remaining drain window is observationally dead time.
        end_of_run = horizon + self._config.drain_ms
        while qa and pending and next_boundary <= end_of_run:
            pending = self._boundary(
                next_boundary, period_index, pending, collector
            )
            period_index += 1
            next_boundary += period
        dropped = len(pending)
        # Final collect barrier: outcome columns, worker RSS, load stats.
        replies = transport.exchange(
            [("collect",)] * self._plan.num_shards
        )
        cols = [[] for _ in range(9)]
        assigned_per_shard = []
        self_times = []
        peak_kb = 0
        for reply in replies:
            for c, part in zip(cols, reply["columns"]):
                c.extend(part)
            assigned_per_shard.append(reply["assigned"])
            self_times.append(float(reply.get("self_time_s", 0.0)))
            if reply["maxrss_kb"] > peak_kb:
                peak_kb = reply["maxrss_kb"]
        transport.note_child_peak_kb(peak_kb)
        self.last_shard_self_time_s = self_times
        int_cols = (0, 1, 2, 5, 8)
        columns = [
            _np.array(c, dtype=_np.int64 if n in int_cols else float)
            for n, c in enumerate(cols)
        ]
        order = _np.lexsort((columns[0], columns[7]))
        columns = [c[order] for c in columns]
        total_assigned = sum(assigned_per_shard)
        imbalance = 1.0
        if assigned_per_shard and total_assigned:
            imbalance = max(assigned_per_shard) / (
                total_assigned / len(assigned_per_shard)
            )
        collector.apply_batch_stats(
            vector_exchanges=self._vector_exchanges
        )
        collector.apply_shard_stats(
            cross_shard_bids=self._cross_shard_bids,
            barrier_wait_ms=transport.barrier_wait_ms,
            shard_imbalance=imbalance,
            shards=self._plan.num_shards,
        )
        self._messages += transport.messages
        transport.messages = 0
        return ShardedRunResult(
            columns=columns,
            dropped=dropped,
            messages=self._messages,
            shards=self._plan.num_shards,
            collector=collector,
        )

    def _reset(self, qa: bool) -> None:
        """Fresh run state everywhere + the initial eq-4 solve."""
        transport = self._transport
        transport.exchange([("reset",)] * self._plan.num_shards)
        self._busy[:] = 0.0
        self._locked[:] = False
        self._maxp[:] = 1.0
        for qc in self._classes:
            k = qc.index
            self._V[k] = _np.ones(len(self._cand[k]), dtype=float)
            self._R[k] = _np.zeros(len(self._cand[k]), dtype=float)
        self._period_serial = 0
        self._saturated_in = {}
        if qa:
            # Mirrors `_after_bind`'s bind-time on_period_start(): solve
            # eq. 4 at the uniform initial prices before any arrival.
            self._solve_barrier(0.0)

    def _market_tick(
        self, now: float, queries: Sequence[Tuple], collector, qa: bool
    ) -> List[Tuple]:
        """One market tick: exchange per query, then the shard barrier.

        Returns the refused queries (they re-enter next period's
        demand).  The per-query exchanges run strictly in arrival order
        against the coordinator's arrays — prices and supply see each
        query's effect before the next, exactly as the paper's
        sequential negotiation requires — then all resulting
        assignments cross to their owning shards in one batched
        bid/quote barrier.
        """
        collector.record_batch_tick(len(queries))
        plan = self._plan
        num_shards = plan.num_shards
        refused: List[Tuple] = []
        per_shard: List[List[Tuple]] = [[] for _ in range(num_shards)]
        first_of_class: Dict[int, Tuple] = {}
        node_to_shard = self._node_to_shard
        for row in queries:
            qid, class_index, origin, arrival, resub = row
            if class_index not in first_of_class:
                first_of_class[class_index] = (qid, origin, resub)
            if qa:
                node = self._exchange(class_index, now)
            else:
                node = self._greedy_exchange(class_index, now)
            if node is None:
                refused.append(row)
            else:
                per_shard[node_to_shard[node]].append(row + (node,))
        self._vector_exchanges += len(queries)
        # The batched cross-shard bidding: one BidRequest per class in
        # the tick, encoded once, broadcast to every shard.
        bids = [
            encode(
                BidRequest(
                    qid=first_qid,
                    class_index=class_index,
                    origin_node=origin,
                    attempt=resub,
                )
            )
            for class_index, (first_qid, origin, resub) in sorted(
                first_of_class.items()
            )
        ]
        frames = [
            ("tick", now, bids, per_shard[s]) for s in range(num_shards)
        ]
        replies = self._transport.exchange(frames)
        self._cross_shard_bids += len(bids) * num_shards
        self._messages += len(bids) * num_shards
        busy = self._busy
        for reply in replies:
            quotes = reply["quotes"]
            self._messages += len(quotes)
            for payload in quotes:
                quote = decode(payload)
                # Authoritative resync: the shard's finish includes the
                # negotiation delay the optimistic mirror skipped.
                busy[quote.node_id] = quote.estimated_completion_ms
        return refused

    def _exchange(self, class_index: int, now: float) -> Optional[int]:
        """One QA-NT request-for-bid exchange, coordinator-side.

        The same array program as
        :meth:`repro.allocation.market_tick.MarketTickDispatcher
        .exchange`: offer test, bulk refusal price raises with the
        scalar clamp order, the Section 5.1 activation latch, then the
        earliest-completion winner by first-occurrence argmin (lowest
        node id on ties).
        """
        if self._saturated_in.get(class_index) == self._period_serial:
            return None
        R = self._R[class_index]
        V = self._V[class_index]
        cand = self._cand[class_index]
        offers = R >= 1.0
        refuse = _np.nonzero(~offers)[0]
        if refuse.size:
            old = V[refuse]
            new = old * self._factor
            _np.maximum(new, self._floor, out=new)
            _np.minimum(new, self._cap, out=new)
            changed = new != old
            V[refuse] = new
            nodes_r = cand[refuse]
            m = self._maxp[nodes_r]
            if changed.any():
                m = _np.maximum(m, new)
                self._maxp[nodes_r] = m
            threshold = self._threshold
            if threshold is not None:
                passed = ~self._locked[nodes_r]
                passed &= m < threshold
                self._locked[nodes_r] = ~passed
                offers[refuse] = passed
        if not offers.any():
            if bool((V == self._cap).all()):
                self._saturated_in[class_index] = self._period_serial
            return None
        est = _np.maximum(self._busy[cand], now)
        est += self._lane_costs[class_index]
        est[~offers] = _np.inf
        winner = int(est.argmin())
        if R[winner] >= 1.0:
            R[winner] -= 1.0
        node = int(cand[winner])
        # Optimistic busy mirror: later queries of this tick see the
        # commitment; the shard's Quote overwrites it with the true
        # finish (delay included) at the tick barrier.
        self._busy[node] = float(est[winner])
        return node

    def _greedy_exchange(self, class_index: int, now: float) -> int:
        """Greedy: every candidate offers; earliest completion wins."""
        cand = self._cand[class_index]
        est = _np.maximum(self._busy[cand], now)
        est += self._lane_costs[class_index]
        winner = int(est.argmin())
        node = int(cand[winner])
        self._busy[node] = float(est[winner])
        return node

    def _boundary(
        self, now: float, period_index: int, pending: List[Tuple], collector
    ) -> List[Tuple]:
        """One QA-NT period boundary: steps 12-14, eq. 4, retries."""
        # Steps 12-14 vectorised: every class lane with leftover supply
        # lowers its price by `max(0, 1 - leftover*lambda)`, floored.
        for qc in self._classes:
            k = qc.index
            R = self._R[k]
            V = self._V[k]
            mask = R > 0.0
            if mask.any():
                f = 1.0 - R * self._adjustment
                _np.maximum(f, 0.0, out=f)
                new = V * f
                _np.maximum(new, self._floor, out=new)
                V[:] = _np.where(mask, new, V)
        # The tick barrier as a protocol event: a PeriodTick fanout to
        # every shard (the transport's Transport-ABC verb; the ack is
        # the barrier).
        self._transport.fanout(
            -1,
            range(self._plan.num_shards),
            PeriodTick(
                period_index=period_index, period_ms=self._config.period_ms
            ),
        )
        self._solve_barrier(now)
        if not pending:
            return []
        retry = [
            (qid, class_index, origin, arrival, resub + 1)
            for qid, class_index, origin, arrival, resub in pending
        ]
        return self._market_tick(now, retry, collector, qa=True)

    def _solve_barrier(self, now: float) -> None:
        """Eq. 4 at every shard; scatter the supply back into the lanes."""
        num_classes = len(self._classes)
        frames = []
        for shard_index in range(self._plan.num_shards):
            local = self._plan.shard_nodes[shard_index]
            prices = _np.ones((len(local), num_classes), dtype=float)
            tables = self._shard_rows[shard_index]
            for qc in self._classes:
                k = qc.index
                lanes, rows = tables[k]
                prices[rows, k] = self._V[k][lanes]
            frames.append(("solve", now, prices))
        replies = self._transport.exchange(frames)
        for shard_index, reply in enumerate(replies):
            # tcp replies carry nested lists, pipes carry the ndarray.
            whole = _np.asarray(reply["supply"], dtype=float)
            tables = self._shard_rows[shard_index]
            for qc in self._classes:
                k = qc.index
                lanes, rows = tables[k]
                self._R[k][lanes] = whole[rows, k]
        # New period: latches clear, the max-price mirror re-derives
        # from the (possibly lowered) prices, the saturation fast path
        # re-arms.
        self._locked[:] = False
        self._maxp[:] = self._maxp_base
        for qc in self._classes:
            k = qc.index
            _np.maximum.at(self._maxp, self._cand[k], self._V[k])
        self._period_serial += 1

    # -- the local-market coordinator -----------------------------------------

    def _run_local(self, trace, mechanism: str) -> ShardedRunResult:
        """The ``market="local"`` engine: route, post, reconcile, merge.

        The coordinator here is *slim*: it owns a routing table and the
        residual plane (components split across shards); every
        shard-owned class is priced, matched and executed entirely
        shard-side from one-way ``mtick`` frames of encoded
        ``BidRequest`` payloads — the double-buffered pipeline.  Every R
        period boundaries a sync reconciliation barrier pulls per-class
        price/supply digests and busy watermarks back into the
        cross-shard quote mirror (and flushes the pipeline).  Outcomes
        merge exactly as in the coordinator-market engine: globally
        sorted by ``(finish_ms, qid)`` before any reduction.
        """
        transport = self._transport
        qa = mechanism == "qa-nt"
        collector = MetricsCollector()
        self._messages = 0
        residual_queries = 0
        transport.barrier_wait_ms = 0.0
        transport.posted_frames = 0
        transport.exchange([("reset", qa)] * self._plan.num_shards)
        self._residual.reset(qa)
        self._mirror_busy[:] = 0.0
        self._mirror_V = {}
        self._mirror_R = {}
        self._reconcile_barriers = 0
        self._reconcile_lag_max = 0
        self._staleness_max = 0.0
        self._boundaries_since_reconcile = 0
        if any(
            trace[i].time_ms > trace[i + 1].time_ms
            for i in range(len(trace) - 1)
        ):
            trace = sorted(trace, key=lambda e: e.time_ms)
        horizon = max(e.time_ms for e in trace)
        period = self._config.period_ms
        next_boundary = period
        qid = 0
        owner = self._owner
        num_shards = self._plan.num_shards
        i, total = 0, len(trace)
        while i < total:
            t = trace[i].time_ms
            j = i
            while j < total and trace[j].time_ms == t:
                j += 1
            # Boundary-first at equal timestamps, exactly like the
            # coordinator-market loop.
            while qa and next_boundary <= t:
                self._local_boundary(next_boundary)
                next_boundary += period
            batch = trace[i:j]
            collector.record_batch_tick(len(batch))
            per_shard: List[List[Tuple]] = [[] for _ in range(num_shards)]
            residual_rows: List[Tuple] = []
            for n, e in enumerate(batch):
                k = e.class_index
                row = (qid + n, k, e.origin_node, t, 0)
                s = owner.get(k, -1)
                if s >= 0:
                    per_shard[s].append(row)
                else:
                    residual_rows.append(row)
            qid += len(batch)
            frames: List[Optional[Tuple]] = [None] * num_shards
            for s, rows_s in enumerate(per_shard):
                if rows_s:
                    payloads = [
                        encode(
                            BidRequest(
                                qid=r[0],
                                class_index=r[1],
                                origin_node=r[2],
                                attempt=r[4],
                            )
                        )
                        for r in rows_s
                    ]
                    frames[s] = ("mtick", t, payloads)
                    self._messages += len(payloads)
            if any(frame is not None for frame in frames):
                transport.post(frames)
            if residual_rows:
                residual_queries += len(residual_rows)
                self._residual.market_tick(t, residual_rows)
            i = j
        # Drain: a sync reconcile flushes the pipeline and reports every
        # plane's backlog; boundaries then tick while any plane still
        # holds pending queries (shard retries run autonomously — the
        # sync mboundary reply is just the pending count).
        end_of_run = horizon + self._config.drain_ms
        if qa:
            pendings = self._reconcile()
            global_pending = self._residual.pending_count + sum(pendings)
            while global_pending and next_boundary <= end_of_run:
                replies = transport.exchange(
                    [
                        ("mboundary", next_boundary) if active else None
                        for active in self._active_plane
                    ]
                )
                shard_pending = sum(
                    reply["pending"]
                    for reply in replies
                    if reply is not None
                )
                res_pending = self._residual.boundary(next_boundary)
                global_pending = shard_pending + res_pending
                next_boundary += period
        # Final collect barrier: outcome columns, worker RSS, self-time.
        replies = transport.exchange([("collect",)] * num_shards)
        cols = [[] for _ in range(9)]
        assigned_per_shard = []
        self_times = []
        exchanges = self._residual.exchanges
        dropped = self._residual.pending_count
        peak_kb = 0
        for reply in replies:
            for c, part in zip(cols, reply["columns"]):
                c.extend(part)
            assigned_per_shard.append(reply["assigned"])
            exchanges += reply["exchanges"]
            dropped += reply["pending"]
            self_times.append(float(reply.get("self_time_s", 0.0)))
            if reply["maxrss_kb"] > peak_kb:
                peak_kb = reply["maxrss_kb"]
        for c, part in zip(cols, self._residual.collect()["columns"]):
            c.extend(part)
        transport.note_child_peak_kb(peak_kb)
        self.last_shard_self_time_s = self_times
        int_cols = (0, 1, 2, 5, 8)
        columns = [
            _np.array(c, dtype=_np.int64 if n in int_cols else float)
            for n, c in enumerate(cols)
        ]
        order = _np.lexsort((columns[0], columns[7]))
        columns = [c[order] for c in columns]
        total_assigned = sum(assigned_per_shard)
        imbalance = 1.0
        if assigned_per_shard and total_assigned:
            imbalance = max(assigned_per_shard) / (
                total_assigned / len(assigned_per_shard)
            )
        collector.apply_batch_stats(vector_exchanges=exchanges)
        collector.apply_shard_stats(
            cross_shard_bids=residual_queries,
            barrier_wait_ms=transport.barrier_wait_ms,
            shard_imbalance=imbalance,
            shards=num_shards,
        )
        collector.apply_reconcile_stats(
            reconcile_barriers=self._reconcile_barriers,
            reconcile_interval=self._reconcile_interval,
            reconcile_lag_ticks_max=self._reconcile_lag_max,
            price_staleness_max=self._staleness_max,
            overlapped_frames=transport.posted_frames,
            local_classes=sum(len(ks) for ks in self._plane_classes),
            residual_classes=len(self._residual_classes),
        )
        self._messages += transport.messages
        transport.messages = 0
        return ShardedRunResult(
            columns=columns,
            dropped=dropped,
            messages=self._messages,
            shards=num_shards,
            collector=collector,
        )

    def _local_boundary(self, now: float) -> None:
        """One period boundary: posted to every active plane (one-way),
        run in-process on the residual plane, reconciled every R-th."""
        self._transport.post(
            [
                ("mboundary", now) if active else None
                for active in self._active_plane
            ]
        )
        self._residual.boundary(now)
        self._boundaries_since_reconcile += 1
        if self._boundaries_since_reconcile >= self._reconcile_interval:
            self._reconcile()

    def _reconcile(self) -> List[int]:
        """The price-reconciliation barrier (sync).

        Pulls each active plane's per-class price/supply digest and busy
        watermarks into the coordinator's mirror, folds the residual
        plane's digest on the same cadence, and returns the per-shard
        pending counts.  Because workers process frames in order, this
        barrier also proves every previously posted one-way frame has
        been applied — it *is* the pipeline flush.
        """
        replies = self._transport.exchange(
            [
                ("reconcile",) if active else None
                for active in self._active_plane
            ]
        )
        if self._boundaries_since_reconcile > self._reconcile_lag_max:
            self._reconcile_lag_max = self._boundaries_since_reconcile
        self._boundaries_since_reconcile = 0
        pendings: List[int] = []
        digests: List[Tuple[Sequence[int], Mapping[str, object]]] = []
        for s, reply in enumerate(replies):
            if reply is None:
                pendings.append(0)
                continue
            pendings.append(int(reply["pending"]))
            digests.append((self._plane_nodes[s], reply))
            self._messages += 2
        digests.append(
            (self._residual.node_ids, self._residual.reconcile_digest())
        )
        staleness = self._staleness_max
        for nodes, digest in digests:
            for k, vals in digest["prices"]:
                old = self._mirror_V.get(k)
                if old is not None:
                    for a, b in zip(old, vals):
                        d = abs(b - a)
                        if d > staleness:
                            staleness = d
                self._mirror_V[int(k)] = [float(v) for v in vals]
            for k, vals in digest["supply"]:
                self._mirror_R[int(k)] = [float(v) for v in vals]
            busy = self._mirror_busy
            for nid, b in zip(nodes, digest["busy"]):
                busy[nid] = b
        self._staleness_max = staleness
        self._reconcile_barriers += 1
        return pendings

    # -- cross-shard visibility ------------------------------------------------

    def stale_quotes(
        self, class_index: int, now: float = 0.0
    ) -> List[Tuple[int, float]]:
        """Bounded-staleness quotes for ``class_index`` from the mirror.

        ``(node_id, estimated_completion_ms)`` per candidate lane,
        computed from the busy watermarks of the *last reconciliation
        barrier* — at most R period boundaries old.  This is the
        cross-shard view a remote matcher would price against; the
        market arithmetic itself never reads it (exactness does not
        depend on R).
        """
        if self._plan is None or self._market != "local":
            raise RuntimeError(
                "stale quotes require a sharded local-market federation"
            )
        cand = self._cand[class_index]
        est = _np.maximum(self._mirror_busy[cand], now)
        est = est + self._lane_costs[class_index]
        return [
            (int(nid), float(e))
            for nid, e in zip(cand.tolist(), est.tolist())
        ]

    def stale_prices(self, class_index: int) -> Optional[List[float]]:
        """Per-lane prices of ``class_index`` as of the last barrier
        (None before the first reconciliation)."""
        if self._plan is None or self._market != "local":
            raise RuntimeError(
                "stale prices require a sharded local-market federation"
            )
        vals = self._mirror_V.get(class_index)
        return None if vals is None else list(vals)

    def shard_self_time_s(self) -> List[float]:
        """Per-shard aggregate frame-handling self-time of the last run
        (seconds, fixed shard order; empty before any sharded run)."""
        return list(self.last_shard_self_time_s)
